// Package render provides the raster canvas used to draw timing diagrams:
// Bresenham lines with stroke thickness, dashed strokes, double-headed
// arrows, polylines, rectangles and rich text (via internal/font), all on an
// ink/paper binary layer that converts to grayscale or PNG.
//
// Both the synthetic training generator (L-TD-G) and the industrial-corpus
// generator draw through this package, so every picture the pipeline sees is
// produced by the same primitives a datasheet plotting tool would use.
package render

import (
	"io"

	"tdmagic/internal/font"
	"tdmagic/internal/geom"
	"tdmagic/internal/imgproc"
)

// Canvas is an ink-on-paper drawing surface.
type Canvas struct {
	ink *imgproc.Binary
}

// NewCanvas returns a blank w×h canvas.
func NewCanvas(w, h int) *Canvas {
	return &Canvas{ink: imgproc.NewBinary(w, h)}
}

// W returns the canvas width in pixels.
func (c *Canvas) W() int { return c.ink.W }

// H returns the canvas height in pixels.
func (c *Canvas) H() int { return c.ink.H }

// Ink returns the underlying binary ink layer (shared, not a copy).
func (c *Canvas) Ink() *imgproc.Binary { return c.ink }

// Gray converts the canvas to a grayscale image (ink black, paper white).
func (c *Canvas) Gray() *imgproc.Gray { return c.ink.ToGray() }

// EncodePNG writes the canvas as a PNG.
func (c *Canvas) EncodePNG(w io.Writer) error { return c.Gray().EncodePNG(w) }

// SetPixel places ink at (x, y); out-of-canvas coordinates are ignored.
func (c *Canvas) SetPixel(x, y int) { c.ink.Set(x, y, true) }

// stamp draws a filled square of the given stroke thickness centred at
// (x, y). Thickness 1 is a single pixel.
func (c *Canvas) stamp(x, y, thick int) {
	if thick <= 1 {
		c.SetPixel(x, y)
		return
	}
	r := thick / 2
	for dy := -r; dy <= r-(1-thick%2); dy++ {
		for dx := -r; dx <= r-(1-thick%2); dx++ {
			c.SetPixel(x+dx, y+dy)
		}
	}
}

// Line draws a straight stroke from p to q with the given thickness using
// Bresenham's algorithm.
func (c *Canvas) Line(p, q geom.Pt, thick int) {
	c.dashedLine(p, q, thick, 0, 0)
}

// DashedLine draws a stroke from p to q with on-pixels-long dashes separated
// by off-pixel gaps. on <= 0 draws a solid line.
func (c *Canvas) DashedLine(p, q geom.Pt, thick, on, off int) {
	c.dashedLine(p, q, thick, on, off)
}

func (c *Canvas) dashedLine(p, q geom.Pt, thick, on, off int) {
	dx := geom.Abs(q.X - p.X)
	dy := -geom.Abs(q.Y - p.Y)
	sx, sy := 1, 1
	if p.X > q.X {
		sx = -1
	}
	if p.Y > q.Y {
		sy = -1
	}
	err := dx + dy
	x, y := p.X, p.Y
	step := 0
	period := on + off
	for {
		if on <= 0 || step%period < on {
			c.stamp(x, y, thick)
		}
		if x == q.X && y == q.Y {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x += sx
		}
		if e2 <= dx {
			err += dx
			y += sy
		}
		step++
	}
}

// Polyline draws connected line segments through pts.
func (c *Canvas) Polyline(pts []geom.Pt, thick int) {
	for i := 1; i < len(pts); i++ {
		c.Line(pts[i-1], pts[i], thick)
	}
}

// RectOutline draws the border of r.
func (c *Canvas) RectOutline(r geom.Rect, thick int) {
	c.Line(geom.Pt{X: r.X0, Y: r.Y0}, geom.Pt{X: r.X1, Y: r.Y0}, thick)
	c.Line(geom.Pt{X: r.X1, Y: r.Y0}, geom.Pt{X: r.X1, Y: r.Y1}, thick)
	c.Line(geom.Pt{X: r.X1, Y: r.Y1}, geom.Pt{X: r.X0, Y: r.Y1}, thick)
	c.Line(geom.Pt{X: r.X0, Y: r.Y1}, geom.Pt{X: r.X0, Y: r.Y0}, thick)
}

// FillRect inks every pixel of r.
func (c *Canvas) FillRect(r geom.Rect) {
	r = r.Clip(c.ink.Bounds())
	for y := r.Y0; y <= r.Y1; y++ {
		for x := r.X0; x <= r.X1; x++ {
			c.SetPixel(x, y)
		}
	}
}

// ArrowHead draws a triangular arrow head at tip pointing in direction
// (dirX, dirY) — one of the four axis directions. size is the head length in
// pixels.
func (c *Canvas) ArrowHead(tip geom.Pt, dirX, dirY, size, thick int) {
	for i := 0; i <= size; i++ {
		// The head widens as we move back from the tip.
		bx := tip.X - dirX*i
		by := tip.Y - dirY*i
		if dirX != 0 { // horizontal arrow: widen vertically
			c.Line(geom.Pt{X: bx, Y: by - i/2}, geom.Pt{X: bx, Y: by + i/2}, thick)
		} else { // vertical arrow: widen horizontally
			c.Line(geom.Pt{X: bx - i/2, Y: by}, geom.Pt{X: bx + i/2, Y: by}, thick)
		}
	}
}

// HArrow draws a horizontal double-headed arrow on row y spanning columns
// [x0, x1], the standard timing-constraint annotation.
func (c *Canvas) HArrow(y, x0, x1, thick int) {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	size := (x1 - x0) / 4
	if size > 6 {
		size = 6
	}
	if size < 2 {
		size = 2
	}
	c.Line(geom.Pt{X: x0, Y: y}, geom.Pt{X: x1, Y: y}, thick)
	c.ArrowHead(geom.Pt{X: x0, Y: y}, -1, 0, size, thick)
	c.ArrowHead(geom.Pt{X: x1, Y: y}, 1, 0, size, thick)
}

// HArrowOutward draws the outward variant used when the annotated span is
// too narrow: two arrows outside the vertical lines pointing inwards at the
// span boundaries (the "6ns" style of paper Fig. 7).
func (c *Canvas) HArrowOutward(y, x0, x1, tail, thick int) {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	size := 3
	c.Line(geom.Pt{X: x0 - tail, Y: y}, geom.Pt{X: x0, Y: y}, thick)
	c.ArrowHead(geom.Pt{X: x0, Y: y}, 1, 0, size, thick)
	c.Line(geom.Pt{X: x1, Y: y}, geom.Pt{X: x1 + tail, Y: y}, thick)
	c.ArrowHead(geom.Pt{X: x1, Y: y}, -1, 0, size, thick)
}

// VArrow draws a vertical arrow from (x, y0) to a head at (x, y1).
func (c *Canvas) VArrow(x, y0, y1, thick int) {
	c.Line(geom.Pt{X: x, Y: y0}, geom.Pt{X: x, Y: y1}, thick)
	dir := 1
	if y1 < y0 {
		dir = -1
	}
	c.ArrowHead(geom.Pt{X: x, Y: y1}, 0, dir, 4, thick)
}

// Text draws a rich string (see internal/font markup) with the text-cell
// origin at (x, y) and returns the ink bounding box.
func (c *Canvas) Text(x, y int, s string, scale int) geom.Rect {
	return font.DrawRich(c.SetPixel, x, y, s, scale)
}

// TextCentered draws a rich string horizontally centred on cx with the cell
// top at y.
func (c *Canvas) TextCentered(cx, y int, s string, scale int) geom.Rect {
	w, _ := font.MeasureRich(s, scale)
	return c.Text(cx-w/2, y, s, scale)
}

// MeasureText returns the extent a rich string would occupy at scale.
func (c *Canvas) MeasureText(s string, scale int) (w, h int) {
	return font.MeasureRich(s, scale)
}
