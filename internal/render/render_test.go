package render

import (
	"bytes"
	"testing"

	"tdmagic/internal/geom"
	"tdmagic/internal/imgproc"
)

func TestNewCanvasBlank(t *testing.T) {
	c := NewCanvas(20, 10)
	if c.W() != 20 || c.H() != 10 {
		t.Fatalf("size %dx%d", c.W(), c.H())
	}
	if c.Ink().Count() != 0 {
		t.Error("new canvas has ink")
	}
}

func TestLineHorizontal(t *testing.T) {
	c := NewCanvas(20, 5)
	c.Line(geom.Pt{X: 2, Y: 2}, geom.Pt{X: 17, Y: 2}, 1)
	for x := 2; x <= 17; x++ {
		if !c.Ink().At(x, 2) {
			t.Errorf("missing pixel at x=%d", x)
		}
	}
	if c.Ink().Count() != 16 {
		t.Errorf("count = %d, want 16", c.Ink().Count())
	}
}

func TestLineVerticalAndReversed(t *testing.T) {
	c := NewCanvas(5, 20)
	c.Line(geom.Pt{X: 2, Y: 17}, geom.Pt{X: 2, Y: 3}, 1) // bottom-to-top
	for y := 3; y <= 17; y++ {
		if !c.Ink().At(2, y) {
			t.Errorf("missing pixel at y=%d", y)
		}
	}
}

func TestLineDiagonal(t *testing.T) {
	c := NewCanvas(12, 12)
	c.Line(geom.Pt{X: 0, Y: 0}, geom.Pt{X: 10, Y: 10}, 1)
	for i := 0; i <= 10; i++ {
		if !c.Ink().At(i, i) {
			t.Errorf("missing diagonal pixel at %d", i)
		}
	}
	if c.Ink().Count() != 11 {
		t.Errorf("count = %d", c.Ink().Count())
	}
}

func TestLineThickness(t *testing.T) {
	c := NewCanvas(20, 9)
	c.Line(geom.Pt{X: 3, Y: 4}, geom.Pt{X: 16, Y: 4}, 3)
	for x := 3; x <= 16; x++ {
		for dy := -1; dy <= 1; dy++ {
			if !c.Ink().At(x, 4+dy) {
				t.Errorf("thick line missing (%d,%d)", x, 4+dy)
			}
		}
	}
	if c.Ink().At(10, 1) || c.Ink().At(10, 7) {
		t.Error("thick line too fat")
	}
}

func TestLineSinglePoint(t *testing.T) {
	c := NewCanvas(5, 5)
	c.Line(geom.Pt{X: 2, Y: 2}, geom.Pt{X: 2, Y: 2}, 1)
	if c.Ink().Count() != 1 || !c.Ink().At(2, 2) {
		t.Error("degenerate line wrong")
	}
}

func TestLineClipping(t *testing.T) {
	c := NewCanvas(5, 5)
	c.Line(geom.Pt{X: -10, Y: 2}, geom.Pt{X: 10, Y: 2}, 1) // must not panic
	for x := 0; x < 5; x++ {
		if !c.Ink().At(x, 2) {
			t.Error("clipped line incomplete inside canvas")
		}
	}
}

func TestDashedLine(t *testing.T) {
	c := NewCanvas(30, 3)
	c.DashedLine(geom.Pt{X: 0, Y: 1}, geom.Pt{X: 29, Y: 1}, 1, 4, 3)
	if !c.Ink().At(0, 1) || !c.Ink().At(3, 1) {
		t.Error("first dash missing")
	}
	if c.Ink().At(4, 1) || c.Ink().At(6, 1) {
		t.Error("first gap inked")
	}
	if !c.Ink().At(7, 1) {
		t.Error("second dash missing")
	}
	// solid when on <= 0
	c2 := NewCanvas(30, 3)
	c2.DashedLine(geom.Pt{X: 0, Y: 1}, geom.Pt{X: 29, Y: 1}, 1, 0, 5)
	if c2.Ink().Count() != 30 {
		t.Error("on<=0 should be solid")
	}
}

func TestPolyline(t *testing.T) {
	c := NewCanvas(20, 20)
	c.Polyline([]geom.Pt{{X: 0, Y: 10}, {X: 5, Y: 10}, {X: 8, Y: 3}, {X: 15, Y: 3}}, 1)
	if !c.Ink().At(3, 10) || !c.Ink().At(12, 3) {
		t.Error("polyline segments missing")
	}
	// single point and empty: no panic, no ink beyond nothing
	c2 := NewCanvas(5, 5)
	c2.Polyline(nil, 1)
	c2.Polyline([]geom.Pt{{X: 2, Y: 2}}, 1)
	if c2.Ink().Count() != 0 {
		t.Error("degenerate polylines inked")
	}
}

func TestRectOutlineAndFill(t *testing.T) {
	c := NewCanvas(20, 20)
	r := geom.Rect{X0: 3, Y0: 4, X1: 12, Y1: 9}
	c.RectOutline(r, 1)
	if !c.Ink().At(3, 4) || !c.Ink().At(12, 9) || !c.Ink().At(7, 4) || !c.Ink().At(3, 7) {
		t.Error("outline missing pixels")
	}
	if c.Ink().At(7, 7) {
		t.Error("outline filled interior")
	}
	c2 := NewCanvas(20, 20)
	c2.FillRect(r)
	if c2.Ink().Count() != r.Area() {
		t.Errorf("fill count %d != area %d", c2.Ink().Count(), r.Area())
	}
}

func TestHArrow(t *testing.T) {
	c := NewCanvas(60, 21)
	c.HArrow(10, 10, 49, 1)
	// Shaft present.
	for x := 10; x <= 49; x++ {
		if !c.Ink().At(x, 10) {
			t.Errorf("shaft missing at x=%d", x)
		}
	}
	// Heads flare above and below the shaft near both ends.
	flareLeft, flareRight := false, false
	for x := 10; x <= 18; x++ {
		if c.Ink().At(x, 8) {
			flareLeft = true
		}
	}
	for x := 41; x <= 49; x++ {
		if c.Ink().At(x, 8) {
			flareRight = true
		}
	}
	if !flareLeft || !flareRight {
		t.Error("arrow heads missing")
	}
	// Reversed argument order tolerated.
	c2 := NewCanvas(60, 21)
	c2.HArrow(10, 49, 10, 1)
	if c2.Ink().Count() != c.Ink().Count() {
		t.Error("reversed HArrow differs")
	}
}

func TestHArrowNarrowSpan(t *testing.T) {
	c := NewCanvas(30, 11)
	c.HArrow(5, 10, 14, 1) // very narrow: head size clamps small, no panic
	if c.Ink().Count() == 0 {
		t.Error("narrow arrow drew nothing")
	}
}

func TestHArrowOutward(t *testing.T) {
	c := NewCanvas(60, 11)
	c.HArrowOutward(5, 20, 30, 8, 1)
	// Tails outside the span.
	if !c.Ink().At(13, 5) || !c.Ink().At(37, 5) {
		t.Error("outward tails missing")
	}
	// Gap strictly inside the span (between heads) has no shaft.
	if c.Ink().At(25, 5) {
		t.Error("outward arrow should leave the span interior clear")
	}
}

func TestVArrow(t *testing.T) {
	c := NewCanvas(11, 30)
	c.VArrow(5, 2, 25, 1)
	for y := 2; y <= 25; y++ {
		if !c.Ink().At(5, y) {
			t.Errorf("shaft missing at y=%d", y)
		}
	}
	// Head flares horizontally near the tip.
	flare := false
	for y := 19; y <= 25; y++ {
		if c.Ink().At(3, y) || c.Ink().At(7, y) {
			flare = true
		}
	}
	if !flare {
		t.Error("vertical arrow head missing")
	}
}

func TestTextOnCanvas(t *testing.T) {
	c := NewCanvas(120, 30)
	box := c.Text(5, 5, "V_{INA}", 2)
	if box.Empty() || c.Ink().Count() == 0 {
		t.Fatal("text drew nothing")
	}
	// Ink within the returned box only.
	ink := c.Ink()
	for y := 0; y < ink.H; y++ {
		for x := 0; x < ink.W; x++ {
			if ink.At(x, y) && !(geom.Pt{X: x, Y: y}).In(box) {
				t.Errorf("ink outside text box at (%d,%d)", x, y)
			}
		}
	}
}

func TestTextCentered(t *testing.T) {
	c := NewCanvas(100, 20)
	box := c.TextCentered(50, 3, "ABC", 1)
	mid := (box.X0 + box.X1) / 2
	if mid < 47 || mid > 53 {
		t.Errorf("centred text midpoint %d not near 50", mid)
	}
}

func TestMeasureText(t *testing.T) {
	c := NewCanvas(10, 10)
	w, h := c.MeasureText("AB", 1)
	if w <= 0 || h <= 0 {
		t.Error("measure returned nonpositive size")
	}
}

func TestGrayAndPNG(t *testing.T) {
	c := NewCanvas(10, 10)
	c.SetPixel(3, 3)
	g := c.Gray()
	if g.At(3, 3) != 0 || g.At(0, 0) != 255 {
		t.Error("Gray conversion wrong")
	}
	var buf bytes.Buffer
	if err := c.EncodePNG(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := imgproc.DecodePNG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.At(3, 3) != 0 {
		t.Error("PNG roundtrip lost ink")
	}
}
