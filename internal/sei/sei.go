// Package sei implements the paper's SEI (semantic interpretation) module:
// it consumes the edge boxes from SED, the contours from LAD and the text
// boxes from OCR, associates events to edge boxes (Algorithm 1), associates
// arrows to pairs of vertical lines (Algorithm 2), and generates the SPO.
//
// Deviations from the paper's pseudocode, both documented in DESIGN.md:
//   - Algorithm 2 line 16 pairs *every* two vlines crossing an arrow at the
//     same height; this implementation pairs only horizontally adjacent
//     crossings, so an unrelated line grazing the shaft cannot create a
//     phantom constraint.
//   - A secondary pass recognises the outward-arrow idiom (two short
//     inward-pointing arrows outside the measured span, paper Fig. 7) that
//     the pseudocode does not cover but the paper's tool handles.
package sei

import (
	"fmt"
	"sort"

	"tdmagic/internal/dataset"
	"tdmagic/internal/diag"
	"tdmagic/internal/geom"
	"tdmagic/internal/lad"
	"tdmagic/internal/ocr"
	"tdmagic/internal/sed"
	"tdmagic/internal/spo"
)

// Config holds the association tolerances.
type Config struct {
	// Expand is the edge-box expansion of Algorithm 2 (EXPAND), letting a
	// touching plateau count as intersecting.
	Expand int
	// YTol is the tolerance when comparing the two crossing heights of an
	// arrow (Algorithm 2's y1 = y2).
	YTol int
	// FullSpanFrac defines FULLSPAN: a horizontal line longer than this
	// fraction of the image width is an axis, not an arrow.
	FullSpanFrac float64
	// TopTol is the distance allowed between a vline's top and the edge
	// box it takes its event from.
	TopTol int
	// OutwardMaxTail bounds the shaft length of outward-arrow halves.
	OutwardMaxTail int
	// NameLexicon, when set, snaps recognised signal names to the nearest
	// dictionary entry (the paper's "prepared database for common signal
	// names").
	NameLexicon *ocr.Lexicon
	// ValueLexicon, when set, snaps recognised threshold texts to the
	// nearest known signal-value annotation (the paper's "empirical study
	// on the style of annotating signal values").
	ValueLexicon *ocr.Lexicon
	// Strict restores the fail-fast behaviour: a cyclic or degenerate
	// interpretation returns an error instead of dropping the minimal
	// offending constraints and reporting diagnostics. The oracle
	// experiments use it to keep structural failures visible as failures.
	Strict bool
}

// DefaultConfig returns tolerances for the generated pictures.
func DefaultConfig() Config {
	return Config{
		Expand:         6,
		YTol:           3,
		FullSpanFrac:   0.75,
		TopTol:         8,
		OutwardMaxTail: 40,
	}
}

// Input bundles the upstream module outputs.
type Input struct {
	Width, Height int
	Edges         []sed.Detection
	Lines         *lad.Result
	Texts         []ocr.Result
}

// Event is one edge-box/vertical-line association (Algorithm 1 output).
type Event struct {
	X, Y   int // the threshold crossing point
	BoxIdx int // index into Input.Edges
	VIdx   int // index into Input.Lines.V (the event's annotation line)
	HIdx   int // index into Input.Lines.H (the threshold line; -1 if none)
	VLine  geom.VSeg
	HLine  *geom.HSeg // the threshold line used, nil for step edges
}

// Output is the full semantic interpretation.
type Output struct {
	SPO *spo.SPO
	// Classified annotation structure, for Table II scoring.
	VLines []geom.VSeg
	HLines []geom.HSeg
	Arrows []dataset.Arrow
	// Role-classified texts, for Table III scoring.
	Names       []ocr.Result
	Values      []ocr.Result
	Constraints []ocr.Result
	// Events lists every edge-box event found by Algorithm 1.
	Events []Event
	// Diags records every degradation the interpretation worked around
	// (dropped constraints, repaired structure). Empty on a clean run.
	Diags []diag.Diagnostic
}

// Interpret runs the full semantic analysis.
func Interpret(in Input, cfg Config) (*Output, error) {
	out := &Output{}

	// Per-signal partition of edge boxes (defines signal index and edge
	// index of every event).
	sed.SortDetections(in.Edges)
	groups := sed.Partition(in.Edges)

	// Algorithm 1: edge-box-event association.
	out.Events = edgeBoxEvents(in, cfg)

	// Algorithm 2: arrow association.
	arrows := arrowAssociate(in, cfg)

	// Classify texts by role.
	names, values, constraints, nameIdx, valueIdx, consIdx := classifyTexts(in, arrows, cfg)
	out.Names, out.Values, out.Constraints = names, values, constraints

	// Classified lines for scoring: V-lines are lines carrying an event or
	// an arrow endpoint; H-lines are the dashed threshold lines crossing an
	// edge box (whether or not they mark an event — dense annotations count
	// too).
	out.VLines = eventVLines(out.Events, arrows)
	for _, h := range in.Lines.H {
		if !lad.Dashed(h.Density) {
			continue
		}
		for _, b := range in.Edges {
			if h.Seg.Y >= b.Box.Y0-2 && h.Seg.Y <= b.Box.Y1+2 &&
				h.Seg.X1 >= b.Box.X0 && h.Seg.X0 <= b.Box.X1 {
				out.HLines = appendHSegUnique(out.HLines, h.Seg)
				break
			}
		}
	}

	// SPO generation.
	p, labelled, diags, err := buildSPO(in, cfg, groups, out.Events, arrows,
		names, values, constraints, nameIdx, valueIdx, consIdx)
	if err != nil {
		return nil, err
	}
	out.SPO = p
	out.Arrows = labelled
	out.Diags = diags
	return out, nil
}

// edgeBoxEvents implements Algorithm 1. An event is created for every
// vertical line whose top lies in (or near) an edge box; the event point is
// the crossing with a threshold H-line inside the box (FINDHLINE) or the
// box centre for step-like boxes.
func edgeBoxEvents(in Input, cfg Config) []Event {
	var events []Event
	for bi, b := range in.Edges {
		for vi := range in.Lines.V {
			v := in.Lines.V[vi]
			box := b.Box.Expand(2, cfg.TopTol)
			if v.Seg.X < box.X0 || v.Seg.X > box.X1 {
				continue
			}
			// The line must start at this box: tops far above it belong
			// to a signal higher up.
			if v.Seg.Y0 < box.Y0 || v.Seg.Y0 > box.Y1 {
				continue
			}
			// An event line runs down towards the annotation band; a
			// vertical contour confined to the box is the stroke of a
			// step edge itself, not an annotation.
			if v.Seg.Y1 < b.Box.Y1+10 {
				continue
			}
			x := v.Seg.X
			y, h, hi := findHLine(in, b.Box, x)
			events = append(events, Event{X: x, Y: y, BoxIdx: bi, VIdx: vi, HIdx: hi, VLine: v.Seg, HLine: h})
		}
	}
	return events
}

// findHLine implements FINDHLINE: it looks for a dashed threshold line
// crossing column x inside box b and returns the crossing row plus the
// contour's index in Input.Lines.H; without one it falls back to the box
// centre (index -1).
func findHLine(in Input, b geom.Rect, x int) (int, *geom.HSeg, int) {
	for i := range in.Lines.H {
		h := in.Lines.H[i]
		if !lad.Dashed(h.Density) {
			continue
		}
		if h.Seg.Y < b.Y0-2 || h.Seg.Y > b.Y1+2 {
			continue
		}
		if x < h.Seg.X0 || x > h.Seg.X1 {
			continue
		}
		// The line must actually cross the box horizontally.
		if h.Seg.X1 < b.X0 || h.Seg.X0 > b.X1 {
			continue
		}
		return h.Seg.Y, &h.Seg, i
	}
	return b.CenterY(), nil, -1
}

// crossing is one (arrow, vline) intersection of Algorithm 2.
type crossing struct {
	v geom.VSeg
	y int
}

// rawArrow is an unlabelled detected arrow, carrying the indices of the
// LAD contours that evidence it (for provenance): the vlines anchoring
// its endpoints and the H contour(s) forming the shaft.
type rawArrow struct {
	y          int
	x0, x1     int
	v0Idx      int   // Input.Lines.V index of the left anchor
	v1Idx      int   // Input.Lines.V index of the right anchor
	shaftLines []int // Input.Lines.H indices of the shaft contour(s)
}

// arrowAssociate implements Algorithm 2 plus the outward-arrow pass.
func arrowAssociate(in Input, cfg Config) []rawArrow {
	fullSpan := int(cfg.FullSpanFrac * float64(in.Width))
	type hcand struct {
		seg geom.HSeg
		idx int // index into in.Lines.H
	}
	var candidates []hcand
	for hi := range in.Lines.H {
		h := in.Lines.H[hi]
		if h.Seg.Len() >= fullSpan {
			continue // FULLSPAN: axis
		}
		touches := false
		for _, b := range in.Edges {
			if b.Box.Expand(cfg.Expand, cfg.Expand).Overlaps(h.Seg.Rect()) {
				touches = true
				break
			}
		}
		if touches {
			continue // plateau, rail or threshold line
		}
		candidates = append(candidates, hcand{seg: h.Seg, idx: hi})
	}

	var arrows []rawArrow
	var halves []hcand // candidates anchored to a vline at one end only
	for _, h := range candidates {
		// An arrow's shaft runs between the two vertical lines it
		// measures: both endpoints anchor on a vline. Interior crossings
		// (another event's line passing through the shaft) are
		// incidental and ignored.
		vi0, v0 := vlineNear(in, h.seg.X0, h.seg.Y, cfg.YTol)
		vi1, v1 := vlineNear(in, h.seg.X1, h.seg.Y, cfg.YTol)
		switch {
		case v0 != nil && v1 != nil && v0.X < v1.X:
			arrows = append(arrows, rawArrow{
				y: h.seg.Y, x0: v0.X, x1: v1.X,
				v0Idx: vi0, v1Idx: vi1, shaftLines: []int{h.idx},
			})
		case (v0 != nil) != (v1 != nil) && h.seg.Len() <= cfg.OutwardMaxTail:
			halves = append(halves, h)
		}
	}

	// Outward-arrow pass: two short halves at the same height, each
	// crossing one vline, spanning a gap between adjacent vlines.
	for i := 0; i < len(halves); i++ {
		for j := i + 1; j < len(halves); j++ {
			a, b := halves[i], halves[j]
			if geom.Abs(a.seg.Y-b.seg.Y) > cfg.YTol {
				continue
			}
			if a.seg.X0 > b.seg.X0 {
				a, b = b, a
			}
			// a must end at a vline and b start at another, with the
			// measured span between them.
			via, va := vlineNear(in, a.seg.X1, a.seg.Y, cfg.YTol)
			vib, vb := vlineNear(in, b.seg.X0, b.seg.Y, cfg.YTol)
			if va == nil || vb == nil || va.X >= vb.X {
				continue
			}
			arrows = append(arrows, rawArrow{
				y: a.seg.Y, x0: va.X, x1: vb.X,
				v0Idx: via, v1Idx: vib, shaftLines: []int{a.idx, b.idx},
			})
		}
	}

	// Deduplicate. The stable sort keeps the y/x0 ordering the SPO
	// builder depends on while making the dedup winner (and therefore the
	// surviving provenance) deterministic for tied keys.
	sort.SliceStable(arrows, func(i, j int) bool {
		if arrows[i].y != arrows[j].y {
			return arrows[i].y < arrows[j].y
		}
		return arrows[i].x0 < arrows[j].x0
	})
	var uniq []rawArrow
	for _, a := range arrows {
		dup := false
		for _, u := range uniq {
			if geom.Abs(u.y-a.y) <= cfg.YTol && geom.Abs(u.x0-a.x0) <= 2 && geom.Abs(u.x1-a.x1) <= 2 {
				dup = true
				break
			}
		}
		if !dup {
			uniq = append(uniq, a)
		}
	}
	return uniq
}

// extendV slightly lengthens a vline for crossing tests (shaft rows can sit
// a pixel or two below a line's detected end).
func extendV(v geom.VSeg, tol int) geom.VSeg {
	return geom.VSeg{X: v.X, Y0: v.Y0 - tol, Y1: v.Y1 + tol}
}

// vlineNear returns the vline whose column is within tol of x and whose
// span covers row y (tolerantly), plus its Input.Lines.V index, or
// (-1, nil).
func vlineNear(in Input, x, y, tol int) (int, *geom.VSeg) {
	for i := range in.Lines.V {
		v := in.Lines.V[i].Seg
		if geom.Abs(v.X-x) <= tol+2 && y >= v.Y0-tol && y <= v.Y1+tol {
			return i, &v
		}
	}
	return -1, nil
}

// classifyTexts assigns roles by position: texts sitting at the left end of
// a dashed threshold line are signal values even in the left margin,
// far-left texts are signal names, texts just above an arrow span are
// timing constraints, and the rest are signal values (thresholds, boundary
// values). The index slices run parallel to the role lists and hold each
// text's original position in Input.Texts, so provenance can point at the
// OCR box a role-classified text came from.
func classifyTexts(in Input, arrows []rawArrow, cfg Config) (names, values, constraints []ocr.Result, nameIdx, valueIdx, consIdx []int) {
	leftMargin := in.Width * 13 / 100
	for ti, t := range in.Texts {
		cx := t.Box.CenterX()
		switch {
		case isThresholdLabel(t.Box, in):
			values = append(values, t)
			valueIdx = append(valueIdx, ti)
		case t.Box.X0 < leftMargin && cx < leftMargin*3/2:
			names = append(names, t)
			nameIdx = append(nameIdx, ti)
		case isConstraintLabel(t.Box, arrows):
			constraints = append(constraints, t)
			consIdx = append(consIdx, ti)
		default:
			values = append(values, t)
			valueIdx = append(valueIdx, ti)
		}
	}
	return names, values, constraints, nameIdx, valueIdx, consIdx
}

// isThresholdLabel reports whether a text box sits immediately beside a
// dashed horizontal line at the same height — the threshold annotation
// position (either end of the line).
func isThresholdLabel(box geom.Rect, in Input) bool {
	for _, h := range in.Lines.H {
		if !lad.Dashed(h.Density) {
			continue
		}
		if geom.Abs(box.CenterY()-h.Seg.Y) > 8 {
			continue
		}
		leftGap := h.Seg.X0 - box.X1
		if leftGap >= -12 && leftGap <= 30 && h.Seg.X1 > box.X1+20 {
			return true
		}
		rightGap := box.X0 - h.Seg.X1
		if rightGap >= -12 && rightGap <= 30 && h.Seg.X0 < box.X0-20 {
			return true
		}
	}
	return false
}

// isConstraintLabel reports whether a text box sits just above an arrow,
// inside its span.
func isConstraintLabel(box geom.Rect, arrows []rawArrow) bool {
	cx := box.CenterX()
	for _, a := range arrows {
		if cx >= a.x0 && cx <= a.x1 && box.Y1 <= a.y && box.Y1 >= a.y-28 {
			return true
		}
	}
	return false
}

// eventVLines collects the unique vertical lines that carry an event or an
// arrow endpoint.
func eventVLines(events []Event, arrows []rawArrow) []geom.VSeg {
	var out []geom.VSeg
	add := func(v geom.VSeg) {
		for _, u := range out {
			if u == v {
				return
			}
		}
		out = append(out, v)
	}
	for _, e := range events {
		add(e.VLine)
	}
	_ = arrows
	return out
}

func appendHSegUnique(segs []geom.HSeg, s geom.HSeg) []geom.HSeg {
	for _, u := range segs {
		if u == s {
			return segs
		}
	}
	return append(segs, s)
}

// buildSPO generates the SPO: one node per unique vline referenced by a
// timing constraint (paper Sec. V.3), attributed through its edge-box event;
// one constraint per arrow, ordered left to right. When the interpretation
// is not a strict partial order, the minimal offending constraints are
// dropped and reported as diagnostics — unless cfg.Strict, which keeps the
// historical hard failure.
func buildSPO(in Input, cfg Config, groups [][]sed.Detection, events []Event,
	arrows []rawArrow, names, values, constraints []ocr.Result,
	nameIdx, valueIdx, consIdx []int) (*spo.SPO, []dataset.Arrow, []diag.Diagnostic, error) {

	// Map each edge box to (signal index, edge index within signal).
	type sigPos struct{ signal, edge int }
	boxPos := map[int]sigPos{}
	for si, g := range groups {
		for ei, d := range g {
			for bi := range in.Edges {
				if in.Edges[bi].Box == d.Box && in.Edges[bi].Type == d.Type {
					boxPos[bi] = sigPos{signal: si, edge: ei + 1}
				}
			}
		}
	}

	// Signal names: nearest name text to each group's vertical centre.
	// groupNameIdx remembers which Input.Texts entry supplied each name
	// (-1 for the synthesized S<n> fallback), for provenance.
	groupName := make([]string, len(groups))
	groupNameIdx := make([]int, len(groups))
	for si, g := range groups {
		groupNameIdx[si] = -1
		if len(g) == 0 {
			continue
		}
		y0, y1 := g[0].Box.Y0, g[0].Box.Y1
		for _, d := range g {
			if d.Box.Y0 < y0 {
				y0 = d.Box.Y0
			}
			if d.Box.Y1 > y1 {
				y1 = d.Box.Y1
			}
		}
		cy := (y0 + y1) / 2
		best, bestD, bestI := "", 1<<30, -1
		for ni, n := range names {
			if d := geom.Abs(n.Box.CenterY() - cy); d < bestD {
				best, bestD, bestI = n.Text, d, nameIdx[ni]
			}
		}
		if best == "" {
			best = fmt.Sprintf("S%d", si+1)
		} else if cfg.NameLexicon != nil {
			best = cfg.NameLexicon.Correct(best)
		}
		groupName[si] = best
		groupNameIdx[si] = bestI
	}

	// Events used by arrows, deduplicated by vline column.
	type nodeInfo struct {
		x     int
		event *Event
	}
	nodeByX := map[int]*nodeInfo{}
	findEvent := func(x int) *Event {
		for i := range events {
			if geom.Abs(events[i].X-x) <= 2 {
				return &events[i]
			}
		}
		return nil
	}
	for _, a := range arrows {
		for _, x := range []int{a.x0, a.x1} {
			if _, ok := nodeByX[x]; !ok {
				nodeByX[x] = &nodeInfo{x: x, event: findEvent(x)}
			}
		}
	}
	xs := make([]int, 0, len(nodeByX))
	for x := range nodeByX {
		xs = append(xs, x)
	}
	sort.Ints(xs)

	p := &spo.SPO{}
	nodeIdx := map[int]int{}
	for _, x := range xs {
		ni := nodeByX[x]
		node := spo.Node{Signal: "?", EdgeIndex: 0, Type: spo.RiseStep, Threshold: spo.NoThreshold}
		prov := spo.NodeProv{EdgeBox: -1, VLine: -1, HLine: -1, NameText: -1, ThresholdText: -1}
		if ni.event != nil {
			b := in.Edges[ni.event.BoxIdx]
			node.Type = b.Type
			prov.EdgeBox = ni.event.BoxIdx
			prov.VLine = ni.event.VIdx
			prov.HLine = ni.event.HIdx
			if pos, ok := boxPos[ni.event.BoxIdx]; ok {
				node.Signal = groupName[pos.signal]
				node.EdgeIndex = pos.edge
				prov.NameText = groupNameIdx[pos.signal]
			}
			if !b.Type.IsStep() {
				th, ti := thresholdText(ni.event, values)
				if ti >= 0 {
					prov.ThresholdText = valueIdx[ti]
				}
				if th != "?" && cfg.ValueLexicon != nil {
					th = cfg.ValueLexicon.Correct(th)
				}
				node.Threshold = th
			}
		}
		nodeIdx[x] = p.AddNode(node)
		p.NodeProv = append(p.NodeProv, prov)
	}

	var labelled []dataset.Arrow
	for _, a := range arrows {
		x0, x1 := a.x0, a.x1
		v0, v1 := a.v0Idx, a.v1Idx
		if x0 > x1 {
			x0, x1 = x1, x0
			v0, v1 = v1, v0
		}
		label, ci := arrowLabel(a, constraints)
		if err := p.AddConstraint(nodeIdx[x0], nodeIdx[x1], label); err != nil {
			return nil, nil, nil, err
		}
		cprov := spo.ConstraintProv{SrcVLine: v0, DstVLine: v1, LabelText: -1}
		if ci >= 0 {
			cprov.LabelText = consIdx[ci]
		}
		cprov.HLines = append(cprov.HLines, a.shaftLines...)
		p.ConstraintProv = append(p.ConstraintProv, cprov)
		labelled = append(labelled, dataset.Arrow{Y: a.y, X0: x0, X1: x1, Label: label})
	}
	if err := p.Validate(); err != nil {
		if cfg.Strict {
			// A cyclic or degenerate interpretation is a structural
			// failure: report it rather than emit a non-SPO.
			return nil, nil, nil, fmt.Errorf("sei: interpretation is not a strict partial order: %w", err)
		}
		// Best-effort mode: drop the minimal offending constraints and
		// keep the rest of the interpretation usable.
		var diags []diag.Diagnostic
		p.Constraints, labelled, diags = repairOrder(p, labelled)
		return p, labelled, diags, nil
	}
	return p, labelled, nil, nil
}

// repairOrder makes the constraint graph a strict partial order again by
// dropping the minimal offending constraints: self-loops first, then one
// constraint per remaining cycle (deterministically the last-added
// constraint inside the cyclic residue, i.e. the rightmost arrow — later
// arrows are likelier misreadings than the constraints they contradict).
// labelled is the per-constraint arrow list and is pruned in lockstep.
func repairOrder(p *spo.SPO, labelled []dataset.Arrow) ([]spo.Constraint, []dataset.Arrow, []diag.Diagnostic) {
	var diags []diag.Diagnostic
	cons := p.Constraints
	prov := p.ConstraintProv
	drop := func(k int, why string) {
		loc := geom.Rect{X0: labelled[k].X0, Y0: labelled[k].Y - 2, X1: labelled[k].X1, Y1: labelled[k].Y + 2}
		diags = append(diags, diag.At(diag.StageSEI, diag.Warning, loc,
			"dropped constraint %q (%d -> %d): %s", labelled[k].Label, cons[k].Src, cons[k].Dst, why))
		cons = append(cons[:k], cons[k+1:]...)
		labelled = append(labelled[:k], labelled[k+1:]...)
		// ConstraintProv runs parallel to Constraints; prune in lockstep.
		if k < len(prov) {
			prov = append(prov[:k], prov[k+1:]...)
		}
	}
	for k := 0; k < len(cons); k++ {
		if cons[k].Src == cons[k].Dst {
			drop(k, "self-loop violates irreflexivity")
			k--
		}
	}
	for {
		p.Constraints = cons
		p.ConstraintProv = prov
		residue := cyclicResidue(p)
		if len(residue) == 0 {
			return cons, labelled, diags
		}
		// Remove the last-added constraint that runs inside the residue.
		removed := false
		for k := len(cons) - 1; k >= 0; k-- {
			if residue[cons[k].Src] && residue[cons[k].Dst] {
				drop(k, "breaks a constraint cycle")
				removed = true
				break
			}
		}
		if !removed {
			// Cannot happen: a non-empty residue always contains a
			// constraint. Guard against an infinite loop regardless.
			return cons, labelled, diags
		}
	}
}

// cyclicResidue runs Kahn's algorithm and returns the set of nodes left
// unordered — exactly the nodes involved in (or downstream-locked by)
// constraint cycles. An empty map means the graph is acyclic.
func cyclicResidue(p *spo.SPO) map[int]bool {
	n := len(p.Nodes)
	indeg := make([]int, n)
	adj := make([][]int, n)
	for _, c := range p.Constraints {
		adj[c.Src] = append(adj[c.Src], c.Dst)
		indeg[c.Dst]++
	}
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	done := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		done++
		for _, w := range adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if done == n {
		return nil
	}
	residue := make(map[int]bool)
	for i := 0; i < n; i++ {
		if indeg[i] > 0 {
			residue[i] = true
		}
	}
	return residue
}

// thresholdText finds the printed threshold of an event: the value text
// closest to the event's threshold line, to its left. The second result is
// the chosen text's index in values (-1 if none matched).
func thresholdText(e *Event, values []ocr.Result) (string, int) {
	if e.HLine == nil {
		return "?", -1
	}
	best, bestD, bestI := "?", 1<<30, -1
	for vi, v := range values {
		dy := geom.Abs(v.Box.CenterY() - e.HLine.Y)
		if dy > 8 {
			continue
		}
		// Labels sit at either end of the line; the detected contour may
		// have absorbed the label itself, so allow some overlap.
		var dx int
		switch {
		case v.Box.X0 <= e.HLine.X0: // left side
			dx = e.HLine.X0 - v.Box.X1
		case v.Box.X1 >= e.HLine.X1: // right side
			dx = v.Box.X0 - e.HLine.X1
		default:
			continue // inside the line span: not a threshold label
		}
		if dx > 60 || dx < -40 {
			continue
		}
		if dx < 0 {
			dx = 0
		}
		if d := dy*4 + dx; d < bestD {
			best, bestD, bestI = v.Text, d, vi
		}
	}
	return best, bestI
}

// arrowLabel finds the timing-parameter text of an arrow: the constraint
// text just above the shaft, inside its span. The second result is the
// chosen text's index in constraints (-1 if none matched).
func arrowLabel(a rawArrow, constraints []ocr.Result) (string, int) {
	best, bestD, bestI := "t?", 1<<30, -1
	for ci, c := range constraints {
		cx := c.Box.CenterX()
		if cx < a.x0 || cx > a.x1 {
			continue
		}
		dy := a.y - c.Box.Y1
		if dy < 0 || dy > 28 {
			continue
		}
		if dy < bestD {
			best, bestD, bestI = c.Text, dy, ci
		}
	}
	return best, bestI
}
