package sei

import (
	"reflect"
	"testing"

	"tdmagic/internal/dataset"
	"tdmagic/internal/diag"
	"tdmagic/internal/spo"
)

func cyclicSPO(t *testing.T, edges [][2]int) (*spo.SPO, []dataset.Arrow) {
	t.Helper()
	p := &spo.SPO{}
	n := 0
	for _, e := range edges {
		if e[0] >= n {
			n = e[0] + 1
		}
		if e[1] >= n {
			n = e[1] + 1
		}
	}
	for i := 0; i < n; i++ {
		p.AddNode(spo.Node{Signal: "s", EdgeIndex: i + 1, Type: spo.RiseStep})
	}
	var arrows []dataset.Arrow
	for i, e := range edges {
		if err := p.AddConstraint(e[0], e[1], "t"); err != nil {
			t.Fatal(err)
		}
		arrows = append(arrows, dataset.Arrow{Y: 10 * i, X0: e[0] * 50, X1: e[1] * 50, Label: "t"})
	}
	return p, arrows
}

func TestRepairOrderBreaksCycle(t *testing.T) {
	// 0 -> 1 -> 2 -> 0: one constraint must go; the deterministic choice
	// is the last-added one (2 -> 0).
	p, arrows := cyclicSPO(t, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	cons, kept, diags := repairOrder(p, arrows)
	if len(cons) != 2 || len(kept) != 2 {
		t.Fatalf("kept %d constraints / %d arrows, want 2 / 2", len(cons), len(kept))
	}
	for _, c := range cons {
		if c.Src == 2 && c.Dst == 0 {
			t.Error("the last-added cycle constraint survived")
		}
	}
	if len(diags) != 1 {
		t.Fatalf("diags = %v, want exactly one drop", diags)
	}
	d := diags[0]
	if d.Stage != diag.StageSEI || d.Severity != diag.Warning || !d.HasLocation {
		t.Errorf("diag = %+v, want located SEI warning", d)
	}
	p.Constraints = cons
	if err := p.Validate(); err != nil {
		t.Errorf("repaired graph still invalid: %v", err)
	}
}

func TestRepairOrderSelfLoops(t *testing.T) {
	p, arrows := cyclicSPO(t, [][2]int{{0, 1}, {1, 1}, {1, 2}})
	cons, kept, diags := repairOrder(p, arrows)
	if len(cons) != 2 || len(kept) != 2 || len(diags) != 1 {
		t.Fatalf("cons=%d kept=%d diags=%d, want 2/2/1", len(cons), len(kept), len(diags))
	}
	p.Constraints = cons
	if err := p.Validate(); err != nil {
		t.Errorf("repaired graph still invalid: %v", err)
	}
}

func TestRepairOrderKeepsAcyclicPortion(t *testing.T) {
	// Two disjoint pieces: an acyclic chain 0 -> 1 -> 2 and a 2-cycle
	// 3 <-> 4. The chain must survive untouched.
	p, arrows := cyclicSPO(t, [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 3}})
	cons, kept, _ := repairOrder(p, arrows)
	if len(cons) != 3 {
		t.Fatalf("kept %d constraints, want 3", len(cons))
	}
	if !reflect.DeepEqual(kept[0], arrows[0]) || !reflect.DeepEqual(kept[1], arrows[1]) {
		t.Error("acyclic chain arrows were disturbed")
	}
	p.Constraints = cons
	if err := p.Validate(); err != nil {
		t.Errorf("repaired graph still invalid: %v", err)
	}
}

func TestRepairOrderDeterministic(t *testing.T) {
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 1}, {2, 0}, {4, 4}}
	p1, a1 := cyclicSPO(t, edges)
	p2, a2 := cyclicSPO(t, edges)
	c1, k1, d1 := repairOrder(p1, a1)
	c2, k2, d2 := repairOrder(p2, a2)
	if !reflect.DeepEqual(c1, c2) || !reflect.DeepEqual(k1, k2) || !reflect.DeepEqual(d1, d2) {
		t.Error("repair is not deterministic across identical inputs")
	}
}
