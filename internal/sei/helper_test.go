package sei

import (
	"testing"

	"tdmagic/internal/dataset"
	"tdmagic/internal/diagram"
	"tdmagic/internal/spo"
)

// outwardSample renders a diagram whose only timing constraint uses the
// outward-arrow idiom over a narrow span (paper Fig. 7's "6ns").
func outwardSample(t *testing.T) *dataset.Sample {
	t.Helper()
	d := &diagram.Diagram{
		Name: "outward",
		Signals: []diagram.Signal{
			{
				Name: "CLK",
				Kind: diagram.Ramp,
				Edges: []diagram.Edge{
					{Type: spo.RiseRamp, X0: 0.42, X1: 0.47, YLow: 0.15, YHigh: 0.85,
						Threshold: 0.5, ThresholdText: "50%", HasEvent: true},
					{Type: spo.FallRamp, X0: 0.53, X1: 0.58, YLow: 0.15, YHigh: 0.85,
						Threshold: 0.5, ThresholdText: "50%", HasEvent: true},
				},
			},
		},
		Arrows: []diagram.Arrow{
			{From: diagram.EventRef{Signal: 0, Edge: 0}, To: diagram.EventRef{Signal: 0, Edge: 1},
				Label: "6ns", Y: 0.4, Outward: true},
		},
		Style: diagram.DefaultStyle(),
	}
	s, err := d.Render()
	if err != nil {
		t.Fatal(err)
	}
	return s
}
