package sei

import (
	"math/rand"
	"testing"

	"tdmagic/internal/dataset"
	"tdmagic/internal/geom"
	"tdmagic/internal/imgproc"
	"tdmagic/internal/lad"
	"tdmagic/internal/ocr"
	"tdmagic/internal/sed"
	"tdmagic/internal/tdgen"
)

// oracleInput builds an SEI input from ground truth: true edge boxes, LAD
// contours from the rendered image, and true texts. This isolates SEI's
// semantic logic from detector noise.
func oracleInput(t *testing.T, s *dataset.Sample) Input {
	t.Helper()
	lines := lad.Detect(s.Image, lad.DefaultConfig())
	var edges []sed.Detection
	for _, e := range s.Edges {
		edges = append(edges, sed.Detection{Box: e.Box, Type: e.Type, Score: 1})
	}
	var texts []ocr.Result
	for _, tb := range s.Texts {
		texts = append(texts, ocr.Result{Box: tb.Box, Text: tb.Text, Conf: 1})
	}
	return Input{Width: s.Image.W, Height: s.Image.H, Edges: edges, Lines: lines, Texts: texts}
}

func genSamples(t *testing.T, seed int64, n int) []*dataset.Sample {
	t.Helper()
	g := tdgen.New(tdgen.DefaultConfig(tdgen.G1), rand.New(rand.NewSource(seed)))
	samples, err := g.GenerateN(n)
	if err != nil {
		t.Fatal(err)
	}
	return samples
}

func TestInterpretOracleTemplateLevel(t *testing.T) {
	samples := genSamples(t, 61, 10)
	okCount := 0
	for _, s := range samples {
		out, err := Interpret(oracleInput(t, s), DefaultConfig())
		if err != nil {
			t.Errorf("%s: %v", s.Name, err)
			continue
		}
		if out.SPO.TemplateEqual(s.Truth) {
			okCount++
		} else {
			t.Logf("%s:\n got:\n%s want:\n%s", s.Name, out.SPO.SpecText(), s.Truth.SpecText())
		}
	}
	if okCount < 9 {
		t.Errorf("oracle template-level success %d/10, want >= 9", okCount)
	}
}

func TestInterpretOracleTotalLevel(t *testing.T) {
	samples := genSamples(t, 67, 10)
	okCount := 0
	for _, s := range samples {
		out, err := Interpret(oracleInput(t, s), DefaultConfig())
		if err != nil {
			continue
		}
		if out.SPO.TotalEqual(s.Truth) {
			okCount++
		} else if out.SPO.TemplateEqual(s.Truth) {
			t.Logf("%s texts differ:\n got:\n%s want:\n%s", s.Name, out.SPO.SpecText(), s.Truth.SpecText())
		}
	}
	// With oracle boxes and oracle texts, most extractions should be
	// totally correct.
	if okCount < 8 {
		t.Errorf("oracle total-level success %d/10, want >= 8", okCount)
	}
}

func TestInterpretArrowsMatchTruth(t *testing.T) {
	samples := genSamples(t, 71, 8)
	for _, s := range samples {
		out, err := Interpret(oracleInput(t, s), DefaultConfig())
		if err != nil {
			t.Errorf("%s: %v", s.Name, err)
			continue
		}
		if len(out.Arrows) != len(s.Arrows) {
			t.Errorf("%s: %d arrows detected, want %d", s.Name, len(out.Arrows), len(s.Arrows))
			continue
		}
		for _, gt := range s.Arrows {
			found := false
			for _, a := range out.Arrows {
				if geom.Abs(a.Y-gt.Y) <= 3 && geom.Abs(a.X0-gt.X0) <= 3 && geom.Abs(a.X1-gt.X1) <= 3 {
					found = true
					if a.Label != gt.Label {
						t.Errorf("%s: arrow label %q, want %q", s.Name, a.Label, gt.Label)
					}
				}
			}
			if !found {
				t.Errorf("%s: arrow %+v not detected", s.Name, gt)
			}
		}
	}
}

func TestInterpretVHLineClassification(t *testing.T) {
	samples := genSamples(t, 73, 8)
	for _, s := range samples {
		out, err := Interpret(oracleInput(t, s), DefaultConfig())
		if err != nil {
			continue
		}
		// Every classified V-line matches some ground-truth vline column.
		for _, v := range out.VLines {
			ok := false
			for _, gt := range s.VLines {
				if geom.Abs(v.X-gt.X) <= 3 {
					ok = true
				}
			}
			if !ok {
				t.Errorf("%s: spurious V-line at x=%d", s.Name, v.X)
			}
		}
		// Every classified H-line matches a ground-truth threshold line.
		for _, h := range out.HLines {
			ok := false
			for _, gt := range s.HLines {
				if geom.Abs(h.Y-gt.Y) <= 3 {
					ok = true
				}
			}
			if !ok {
				t.Errorf("%s: spurious H-line at y=%d", s.Name, h.Y)
			}
		}
	}
}

func TestInterpretTextRoles(t *testing.T) {
	samples := genSamples(t, 79, 6)
	for _, s := range samples {
		out, err := Interpret(oracleInput(t, s), DefaultConfig())
		if err != nil {
			continue
		}
		byRole := map[dataset.TextRole]int{}
		for _, tb := range s.Texts {
			byRole[tb.Role]++
		}
		if len(out.Names) != byRole[dataset.RoleSignalName] {
			t.Errorf("%s: %d names classified, want %d", s.Name, len(out.Names), byRole[dataset.RoleSignalName])
		}
		if len(out.Constraints) != byRole[dataset.RoleTimeConstraint] {
			t.Errorf("%s: %d constraints classified, want %d", s.Name, len(out.Constraints), byRole[dataset.RoleTimeConstraint])
		}
	}
}

func TestInterpretEmptyInput(t *testing.T) {
	img := imgproc.NewGray(200, 200)
	lines := lad.Detect(img, lad.DefaultConfig())
	out, err := Interpret(Input{Width: 200, Height: 200, Lines: lines}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.SPO.Nodes) != 0 || len(out.SPO.Constraints) != 0 {
		t.Error("empty image produced a non-empty SPO")
	}
}

func TestInterpretNameLexicon(t *testing.T) {
	samples := genSamples(t, 83, 3)
	s := samples[0]
	in := oracleInput(t, s)
	// Corrupt a signal-name text as OCR would.
	for i := range in.Texts {
		if in.Texts[i].Text == s.Truth.Nodes[0].Signal && len(in.Texts[i].Text) > 2 {
			r := []rune(in.Texts[i].Text)
			r[1] = '1'
			in.Texts[i].Text = string(r)
		}
	}
	cfg := DefaultConfig()
	cfg.NameLexicon = ocr.NewLexicon([]string{s.Truth.Nodes[0].Signal})
	out, err := Interpret(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range out.SPO.Nodes {
		if n.Signal == s.Truth.Nodes[0].Signal {
			found = true
		}
	}
	if !found {
		t.Error("lexicon did not repair the corrupted signal name")
	}
}

func TestOutwardArrowRecognition(t *testing.T) {
	// Build a sample with an outward arrow through the diagram package via
	// tdgen is not possible; craft one directly with the renderer instead.
	s := outwardSample(t)
	out, err := Interpret(oracleInput(t, s), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Arrows) != 1 {
		t.Fatalf("outward arrow not recognised: %d arrows", len(out.Arrows))
	}
	a := out.Arrows[0]
	if geom.Abs(a.X0-s.Arrows[0].X0) > 3 || geom.Abs(a.X1-s.Arrows[0].X1) > 3 {
		t.Errorf("outward arrow span [%d,%d], want [%d,%d]", a.X0, a.X1, s.Arrows[0].X0, s.Arrows[0].X1)
	}
}
