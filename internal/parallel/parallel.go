// Package parallel provides the deterministic fan-out primitives shared by
// the training pipeline (tdgen, eval, sed, nn): an ordered parallel for-loop
// whose observable results depend only on the index each task writes to, and
// a splittable seed derivation so independently generated work items draw
// from reproducible random streams regardless of how many workers run them.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve maps a Workers knob to a concrete worker count: values <= 0 mean
// "use every available core" (GOMAXPROCS).
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// For runs fn(i) for every i in [0, n), fanning the calls out over workers
// goroutines. Tasks are handed out in index order from a shared counter; fn
// must confine its writes to per-index state (e.g. out[i]) so the result is
// identical for any worker count. workers <= 1 runs inline with no
// goroutines.
func For(workers, n int, fn func(i int)) {
	ForWorker(workers, n, func(_, i int) { fn(i) })
}

// ForWorker is For with the worker id passed to fn, so callers can reuse
// per-worker scratch buffers. Worker ids are in [0, workers).
func ForWorker(workers, n int, fn func(worker, i int)) {
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
}

// ForErr runs fn(i) for every i in [0, n) in parallel and returns the error
// of the lowest failing index (so the reported error does not depend on
// scheduling). All tasks run even when one fails.
func ForErr(workers, n int, fn func(i int) error) error {
	errs := make([]error, n)
	For(workers, n, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Seed derives a decorrelated child seed from a master seed and a stream
// index using the splitmix64 finalizer, so per-item random streams are
// reproducible and independent of worker count or completion order.
func Seed(master, stream int64) int64 {
	z := uint64(master)*0x9E3779B97F4A7C15 + uint64(stream) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}
