package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if Resolve(4) != 4 {
		t.Error("positive workers should pass through")
	}
	if Resolve(0) < 1 || Resolve(-3) < 1 {
		t.Error("non-positive workers should resolve to >= 1")
	}
}

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		out := make([]int, 57)
		For(workers, len(out), func(i int) { out[i] = i + 1 })
		for i, v := range out {
			if v != i+1 {
				t.Fatalf("workers=%d: index %d not visited", workers, i)
			}
		}
	}
}

func TestForZeroN(t *testing.T) {
	called := false
	For(4, 0, func(int) { called = true })
	if called {
		t.Error("fn called with n=0")
	}
}

func TestForWorkerIDsBounded(t *testing.T) {
	const workers = 3
	var bad atomic.Bool
	ForWorker(workers, 50, func(w, i int) {
		if w < 0 || w >= workers {
			bad.Store(true)
		}
	})
	if bad.Load() {
		t.Error("worker id out of range")
	}
}

func TestForErrReturnsLowestIndex(t *testing.T) {
	e7 := errors.New("seven")
	e3 := errors.New("three")
	err := ForErr(4, 10, func(i int) error {
		switch i {
		case 7:
			return e7
		case 3:
			return e3
		}
		return nil
	})
	if err != e3 {
		t.Errorf("got %v, want the lowest-index error", err)
	}
	if err := ForErr(4, 10, func(int) error { return nil }); err != nil {
		t.Errorf("unexpected error %v", err)
	}
}

func TestSeedDecorrelated(t *testing.T) {
	seen := map[int64]bool{}
	for master := int64(0); master < 10; master++ {
		for stream := int64(0); stream < 100; stream++ {
			s := Seed(master, stream)
			if seen[s] {
				t.Fatalf("seed collision at master=%d stream=%d", master, stream)
			}
			seen[s] = true
		}
	}
	if Seed(1, 2) != Seed(1, 2) {
		t.Error("Seed not deterministic")
	}
}
