package polytope

import (
	"fmt"
	"math"
	"math/rand"
)

// System is a set of linear inequality constraints a·x <= b over Dim
// variables. Variables are unrestricted in sign; bounds are expressed as
// ordinary constraints.
type System struct {
	Dim   int
	Names []string // optional variable names for diagnostics
	A     [][]float64
	B     []float64
}

// NewSystem returns an empty constraint system over dim variables.
func NewSystem(dim int) *System {
	return &System{Dim: dim, Names: make([]string, dim)}
}

// SetName assigns a diagnostic name to variable i.
func (s *System) SetName(i int, name string) { s.Names[i] = name }

// Name returns the diagnostic name of variable i (or "x<i>").
func (s *System) Name(i int) string {
	if i < len(s.Names) && s.Names[i] != "" {
		return s.Names[i]
	}
	return fmt.Sprintf("x%d", i)
}

// AddLE adds the constraint coef·x <= b. coef maps variable index to
// coefficient; missing indices are zero.
func (s *System) AddLE(coef map[int]float64, b float64) {
	row := make([]float64, s.Dim)
	for i, v := range coef {
		if i < 0 || i >= s.Dim {
			panic(fmt.Sprintf("polytope: variable index %d out of range", i))
		}
		row[i] = v
	}
	s.A = append(s.A, row)
	s.B = append(s.B, b)
}

// AddGE adds coef·x >= b (stored as -coef·x <= -b).
func (s *System) AddGE(coef map[int]float64, b float64) {
	neg := make(map[int]float64, len(coef))
	for i, v := range coef {
		neg[i] = -v
	}
	s.AddLE(neg, -b)
}

// AddBounds adds lo <= x_i <= hi.
func (s *System) AddBounds(i int, lo, hi float64) {
	s.AddGE(map[int]float64{i: 1}, lo)
	s.AddLE(map[int]float64{i: 1}, hi)
}

// AddDiffGE adds x_i - x_j >= c (e.g. "box i starts at least c after box j
// ends").
func (s *System) AddDiffGE(i, j int, c float64) {
	s.AddGE(map[int]float64{i: 1, j: -1}, c)
}

// NumConstraints returns the number of inequalities in the system.
func (s *System) NumConstraints() int { return len(s.A) }

// Feasible reports whether x satisfies every constraint within tol.
func (s *System) Feasible(x []float64, tol float64) bool {
	if len(x) != s.Dim {
		return false
	}
	for k := range s.A {
		dot := 0.0
		for i, a := range s.A[k] {
			dot += a * x[i]
		}
		if dot > s.B[k]+tol {
			return false
		}
	}
	return true
}

// Violations returns a human-readable list of the constraints x violates
// beyond tol, for diagnostics.
func (s *System) Violations(x []float64, tol float64) []string {
	var out []string
	for k := range s.A {
		dot := 0.0
		for i, a := range s.A[k] {
			dot += a * x[i]
		}
		if dot > s.B[k]+tol {
			out = append(out, fmt.Sprintf("constraint %d: %.4f > %.4f", k, dot, s.B[k]))
		}
	}
	return out
}

// Chebyshev computes the Chebyshev centre of the polytope: the centre of the
// largest inscribed ball, together with its radius. A positive radius
// certifies a strictly interior starting point for hit-and-run sampling.
// Because the simplex solver requires nonnegative variables, each free
// variable is split into a difference of nonnegative parts.
func (s *System) Chebyshev() (center []float64, radius float64, err error) {
	m := len(s.A)
	if m == 0 {
		return nil, 0, fmt.Errorf("polytope: empty system has no Chebyshev centre")
	}
	// LP variables: x+ (Dim), x- (Dim), r (1). Maximise r subject to
	// a·(x+ - x-) + ||a|| r <= b and r >= 0 (implicit).
	n := 2*s.Dim + 1
	c := make([]float64, n)
	c[n-1] = 1
	a := make([][]float64, m)
	b := make([]float64, m)
	for k := range s.A {
		row := make([]float64, n)
		norm := 0.0
		for i, v := range s.A[k] {
			row[i] = v
			row[s.Dim+i] = -v
			norm += v * v
		}
		row[n-1] = math.Sqrt(norm)
		a[k] = row
		b[k] = s.B[k]
	}
	x, val, err := SolveLP(c, a, b)
	if err != nil {
		return nil, 0, err
	}
	center = make([]float64, s.Dim)
	for i := 0; i < s.Dim; i++ {
		center[i] = x[i] - x[s.Dim+i]
	}
	if val < -lpEps {
		return nil, 0, ErrInfeasible
	}
	return center, val, nil
}

// Sampler draws approximately uniform samples from the polytope using the
// hit-and-run Markov chain, started at a strictly interior point.
type Sampler struct {
	sys *System
	x   []float64
	rng *rand.Rand
	// Thin controls how many chain steps separate returned samples
	// (default 10). Higher values decorrelate samples at linear cost.
	Thin int
}

// NewSampler prepares a hit-and-run sampler. It computes the Chebyshev
// centre as the starting point and fails if the polytope is empty or has no
// interior (radius not strictly positive).
func NewSampler(sys *System, rng *rand.Rand) (*Sampler, error) {
	center, r, err := sys.Chebyshev()
	if err != nil {
		return nil, err
	}
	if r <= lpEps {
		return nil, fmt.Errorf("polytope: no interior (Chebyshev radius %g)", r)
	}
	return &Sampler{sys: sys, x: center, rng: rng, Thin: 10}, nil
}

// Next advances the chain and returns a fresh sample (a copy).
func (s *Sampler) Next() []float64 {
	thin := s.Thin
	if thin < 1 {
		thin = 1
	}
	for t := 0; t < thin; t++ {
		s.step()
	}
	out := make([]float64, len(s.x))
	copy(out, s.x)
	return out
}

// step performs one hit-and-run move: pick a uniform random direction, find
// the feasible chord through the current point along it, and jump to a
// uniform point on the chord.
func (s *Sampler) step() {
	dim := s.sys.Dim
	dir := make([]float64, dim)
	norm := 0.0
	for i := range dir {
		dir[i] = s.rng.NormFloat64()
		norm += dir[i] * dir[i]
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		return
	}
	for i := range dir {
		dir[i] /= norm
	}
	tMin, tMax := math.Inf(-1), math.Inf(1)
	for k := range s.sys.A {
		ad, ax := 0.0, 0.0
		for i, a := range s.sys.A[k] {
			ad += a * dir[i]
			ax += a * s.x[i]
		}
		slack := s.sys.B[k] - ax
		switch {
		case ad > lpEps:
			if t := slack / ad; t < tMax {
				tMax = t
			}
		case ad < -lpEps:
			if t := slack / ad; t > tMin {
				tMin = t
			}
		default:
			// Direction parallel to this face; if already violated
			// (numerically), stay put.
			if slack < -lpEps {
				return
			}
		}
	}
	if math.IsInf(tMin, -1) || math.IsInf(tMax, 1) || tMax <= tMin {
		return // unbounded direction or degenerate chord: skip the move
	}
	t := tMin + (tMax-tMin)*s.rng.Float64()
	for i := range s.x {
		s.x[i] += t * dir[i]
	}
}

// Sample draws n samples after a burn-in of burnIn chain steps.
func (s *Sampler) Sample(n, burnIn int) [][]float64 {
	for i := 0; i < burnIn; i++ {
		s.step()
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}
