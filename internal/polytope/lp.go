// Package polytope implements the constraint-solving substrate of L-TD-G:
// systems of linear inequalities (the paper's constraint Groups 1–3), a
// dense two-phase simplex solver used to find a strictly interior point
// (the Chebyshev centre), and a hit-and-run Markov-chain Monte-Carlo sampler
// that draws approximately uniform layouts from the feasible polytope —
// replacing the anyHR library the paper uses.
package polytope

import (
	"errors"
	"math"
)

// ErrInfeasible is returned when a linear program (or constraint system) has
// no feasible point.
var ErrInfeasible = errors.New("polytope: infeasible")

// ErrUnbounded is returned when a linear program's objective is unbounded.
var ErrUnbounded = errors.New("polytope: unbounded")

const lpEps = 1e-9

// SolveLP maximises c·x subject to A x <= b and x >= 0 using the two-phase
// tableau simplex method with Bland's anti-cycling rule. It returns the
// optimal x and objective value, ErrInfeasible if the feasible region is
// empty, or ErrUnbounded if the objective grows without bound.
func SolveLP(c []float64, a [][]float64, b []float64) (x []float64, val float64, err error) {
	m := len(a)
	n := len(c)
	for i := range a {
		if len(a[i]) != n {
			return nil, 0, errors.New("polytope: ragged constraint matrix")
		}
	}
	if len(b) != m {
		return nil, 0, errors.New("polytope: len(b) != rows of A")
	}

	// Equality form: A x + s = b with slack s >= 0. Rows with b < 0 are
	// negated (flipping the slack sign) and receive an artificial variable
	// so a starting basis exists.
	nArt := 0
	for i := range b {
		if b[i] < 0 {
			nArt++
		}
	}
	total := n + m + nArt // structural + slack + artificial
	t := newTableau(m, total)
	art := make([]int, 0, nArt)
	artCol := n + m
	for i := 0; i < m; i++ {
		sign := 1.0
		if b[i] < 0 {
			sign = -1.0
		}
		for j := 0; j < n; j++ {
			t.a[i][j] = sign * a[i][j]
		}
		t.a[i][n+i] = sign // slack (negative when row flipped)
		t.b[i] = sign * b[i]
		if sign < 0 {
			t.a[i][artCol] = 1
			t.basis[i] = artCol
			art = append(art, artCol)
			artCol++
		} else {
			t.basis[i] = n + i
		}
	}

	if nArt > 0 {
		// Phase 1: minimise the sum of artificials, i.e. maximise -sum.
		obj := make([]float64, total)
		for _, j := range art {
			obj[j] = -1
		}
		t.setObjective(obj)
		if err := t.iterate(); err != nil {
			return nil, 0, err
		}
		if t.objValue() < -lpEps {
			return nil, 0, ErrInfeasible
		}
		// Drive any artificial still in the basis out (degenerate rows).
		for i, bj := range t.basis {
			if bj < n+m {
				continue
			}
			pivoted := false
			for j := 0; j < n+m; j++ {
				if math.Abs(t.a[i][j]) > lpEps {
					t.pivot(i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row; harmless, leave artificial at zero.
				_ = pivoted
			}
		}
		// Remove artificial columns from consideration.
		t.forbidden = func(j int) bool { return j >= n+m }
	}

	// Phase 2: maximise the real objective.
	obj := make([]float64, total)
	copy(obj, c)
	t.setObjective(obj)
	if err := t.iterate(); err != nil {
		return nil, 0, err
	}

	x = make([]float64, n)
	for i, bj := range t.basis {
		if bj < n {
			x[bj] = t.b[i]
		}
	}
	return x, t.objValue(), nil
}

// tableau is a dense simplex tableau in equality form.
type tableau struct {
	m, n      int // rows, columns (all variables)
	a         [][]float64
	b         []float64
	cost      []float64 // reduced costs row
	z         float64   // current objective value
	basis     []int     // basis[i] = variable index basic in row i
	forbidden func(j int) bool
}

func newTableau(m, n int) *tableau {
	t := &tableau{m: m, n: n}
	t.a = make([][]float64, m)
	for i := range t.a {
		t.a[i] = make([]float64, n)
	}
	t.b = make([]float64, m)
	t.cost = make([]float64, n)
	t.basis = make([]int, m)
	return t
}

// setObjective installs a maximisation objective and prices it out against
// the current basis.
func (t *tableau) setObjective(c []float64) {
	copy(t.cost, c)
	t.z = 0
	for i, bj := range t.basis {
		cb := c[bj]
		if cb == 0 {
			continue
		}
		for j := 0; j < t.n; j++ {
			t.cost[j] -= cb * t.a[i][j]
		}
		t.z += cb * t.b[i]
	}
}

func (t *tableau) objValue() float64 { return t.z }

// iterate runs simplex pivots until optimality (no positive reduced cost)
// or unboundedness.
func (t *tableau) iterate() error {
	maxIter := 200 * (t.m + t.n + 10)
	for iter := 0; iter < maxIter; iter++ {
		// Bland's rule: entering variable = lowest index with positive
		// reduced cost.
		enter := -1
		for j := 0; j < t.n; j++ {
			if t.forbidden != nil && t.forbidden(j) {
				continue
			}
			if t.cost[j] > lpEps {
				enter = j
				break
			}
		}
		if enter < 0 {
			return nil // optimal
		}
		// Ratio test; ties broken by lowest basis index (Bland).
		leave := -1
		best := math.Inf(1)
		for i := 0; i < t.m; i++ {
			if t.a[i][enter] > lpEps {
				ratio := t.b[i] / t.a[i][enter]
				if ratio < best-lpEps || (ratio < best+lpEps && (leave < 0 || t.basis[i] < t.basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return ErrUnbounded
		}
		t.pivot(leave, enter)
	}
	return errors.New("polytope: simplex iteration limit exceeded")
}

// pivot makes column enter basic in row leave.
func (t *tableau) pivot(leave, enter int) {
	p := t.a[leave][enter]
	inv := 1 / p
	for j := 0; j < t.n; j++ {
		t.a[leave][j] *= inv
	}
	t.b[leave] *= inv
	for i := 0; i < t.m; i++ {
		if i == leave {
			continue
		}
		f := t.a[i][enter]
		if f == 0 {
			continue
		}
		for j := 0; j < t.n; j++ {
			t.a[i][j] -= f * t.a[leave][j]
		}
		t.b[i] -= f * t.b[leave]
	}
	f := t.cost[enter]
	if f != 0 {
		for j := 0; j < t.n; j++ {
			t.cost[j] -= f * t.a[leave][j]
		}
		t.z += f * t.b[leave]
	}
	t.basis[leave] = enter
}
