package polytope

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSolveLPSimple(t *testing.T) {
	// max x + y s.t. x <= 3, y <= 4, x + y <= 5  => 5 at e.g. (1,4)..(3,2)
	c := []float64{1, 1}
	a := [][]float64{{1, 0}, {0, 1}, {1, 1}}
	b := []float64{3, 4, 5}
	x, val, err := SolveLP(c, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(val, 5, 1e-8) {
		t.Errorf("val = %v, want 5", val)
	}
	if !approx(x[0]+x[1], 5, 1e-8) {
		t.Errorf("x = %v", x)
	}
}

func TestSolveLPVertex(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 => x=4, y=0, val=12
	x, val, err := SolveLP(
		[]float64{3, 2},
		[][]float64{{1, 1}, {1, 3}},
		[]float64{4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(val, 12, 1e-8) || !approx(x[0], 4, 1e-8) || !approx(x[1], 0, 1e-8) {
		t.Errorf("x = %v val = %v", x, val)
	}
}

func TestSolveLPUnbounded(t *testing.T) {
	// max x s.t. -x <= 1 (x >= -1): unbounded above.
	_, _, err := SolveLP([]float64{1}, [][]float64{{-1}}, []float64{1})
	if !errors.Is(err, ErrUnbounded) {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
}

func TestSolveLPInfeasible(t *testing.T) {
	// x <= -1 with x >= 0 implicit: infeasible.
	_, _, err := SolveLP([]float64{1}, [][]float64{{1}}, []float64{-1})
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolveLPNegativeRHS(t *testing.T) {
	// max -x s.t. -x <= -2 (x >= 2) and x <= 10 => x=2, val=-2.
	// Exercises phase 1 (artificial variable).
	x, val, err := SolveLP([]float64{-1}, [][]float64{{-1}, {1}}, []float64{-2, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(x[0], 2, 1e-8) || !approx(val, -2, 1e-8) {
		t.Errorf("x = %v val = %v", x, val)
	}
}

func TestSolveLPDegenerate(t *testing.T) {
	// Degenerate vertex: multiple constraints meet at optimum. Bland's rule
	// must terminate.
	x, val, err := SolveLP(
		[]float64{1, 1},
		[][]float64{{1, 0}, {0, 1}, {1, 1}, {1, 1}},
		[]float64{2, 2, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(val, 4, 1e-8) {
		t.Errorf("x=%v val=%v", x, val)
	}
}

func TestSolveLPZeroObjective(t *testing.T) {
	x, val, err := SolveLP([]float64{0, 0}, [][]float64{{1, 1}}, []float64{3})
	if err != nil {
		t.Fatal(err)
	}
	if val != 0 || x[0] < -1e-9 || x[1] < -1e-9 {
		t.Errorf("x=%v val=%v", x, val)
	}
}

func TestSolveLPShapeErrors(t *testing.T) {
	if _, _, err := SolveLP([]float64{1}, [][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, _, err := SolveLP([]float64{1}, [][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("b length mismatch accepted")
	}
}

func TestSolveLPRedundantEqualityLikeRows(t *testing.T) {
	// Two copies of the same >=-style constraint plus bounds; phase 1 must
	// drive artificials out and still solve.
	x, val, err := SolveLP(
		[]float64{1},
		[][]float64{{-1}, {-1}, {1}},
		[]float64{-1, -1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(val, 5, 1e-8) || !approx(x[0], 5, 1e-8) {
		t.Errorf("x=%v val=%v", x, val)
	}
}

// TestSolveLPOptimalityProperty: on random bounded LPs, the simplex value
// dominates the objective at any sampled feasible point.
func TestSolveLPOptimalityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(3)
		m := n + 1 + rng.Intn(4)
		a := make([][]float64, m)
		b := make([]float64, m)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.Float64() // nonnegative rows keep the region bounded
			}
			b[i] = 1 + rng.Float64()
		}
		c := make([]float64, n)
		for j := range c {
			c[j] = rng.Float64()*2 - 0.5
		}
		x, val, err := SolveLP(c, a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// The reported solution must be feasible.
		for i := range a {
			dot := 0.0
			for j := range x {
				if x[j] < -1e-9 {
					t.Fatalf("trial %d: negative coordinate %v", trial, x)
				}
				dot += a[i][j] * x[j]
			}
			if dot > b[i]+1e-7 {
				t.Fatalf("trial %d: solution infeasible", trial)
			}
		}
		// Random feasible points never beat it.
		for probe := 0; probe < 50; probe++ {
			p := make([]float64, n)
			for j := range p {
				p[j] = rng.Float64()
			}
			ok := true
			for i := range a {
				dot := 0.0
				for j := range p {
					dot += a[i][j] * p[j]
				}
				if dot > b[i] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			obj := 0.0
			for j := range p {
				obj += c[j] * p[j]
			}
			if obj > val+1e-7 {
				t.Fatalf("trial %d: feasible point beats simplex: %v > %v", trial, obj, val)
			}
		}
	}
}
