package polytope

import (
	"math"
	"math/rand"
	"testing"
)

func squareSystem(lo, hi float64) *System {
	s := NewSystem(2)
	s.AddBounds(0, lo, hi)
	s.AddBounds(1, lo, hi)
	return s
}

func TestSystemFeasible(t *testing.T) {
	s := squareSystem(0, 10)
	if !s.Feasible([]float64{5, 5}, 1e-9) {
		t.Error("interior point infeasible")
	}
	if !s.Feasible([]float64{0, 10}, 1e-9) {
		t.Error("boundary point infeasible")
	}
	if s.Feasible([]float64{-1, 5}, 1e-9) {
		t.Error("exterior point feasible")
	}
	if s.Feasible([]float64{5}, 1e-9) {
		t.Error("wrong-dimension point feasible")
	}
}

func TestSystemViolations(t *testing.T) {
	s := squareSystem(0, 10)
	v := s.Violations([]float64{-2, 11}, 1e-9)
	if len(v) != 2 {
		t.Errorf("violations = %v", v)
	}
	if len(s.Violations([]float64{5, 5}, 1e-9)) != 0 {
		t.Error("interior point has violations")
	}
}

func TestAddDiffGE(t *testing.T) {
	s := NewSystem(2)
	s.AddDiffGE(1, 0, 3) // x1 - x0 >= 3
	if !s.Feasible([]float64{0, 3}, 1e-9) || s.Feasible([]float64{0, 2.9}, 1e-9) {
		t.Error("AddDiffGE semantics wrong")
	}
}

func TestAddLEOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s := NewSystem(2)
	s.AddLE(map[int]float64{5: 1}, 0)
}

func TestNames(t *testing.T) {
	s := NewSystem(2)
	s.SetName(0, "x11l")
	if s.Name(0) != "x11l" || s.Name(1) != "x1" {
		t.Error("names wrong")
	}
}

func TestChebyshevSquare(t *testing.T) {
	s := squareSystem(0, 10)
	c, r, err := s.Chebyshev()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(r, 5, 1e-6) {
		t.Errorf("radius = %v, want 5", r)
	}
	if !approx(c[0], 5, 1e-6) || !approx(c[1], 5, 1e-6) {
		t.Errorf("center = %v, want (5,5)", c)
	}
}

func TestChebyshevNegativeRegion(t *testing.T) {
	// Square entirely in negative coordinates: [-10,-2] x [-8,-4].
	s := NewSystem(2)
	s.AddBounds(0, -10, -2)
	s.AddBounds(1, -8, -4)
	c, r, err := s.Chebyshev()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(r, 2, 1e-6) {
		t.Errorf("radius = %v, want 2", r)
	}
	if c[0] > -2 || c[0] < -10 || !approx(c[1], -6, 1e-6) {
		t.Errorf("center = %v", c)
	}
}

func TestChebyshevTriangle(t *testing.T) {
	// Triangle x>=0, y>=0, x+y<=2: inradius = (a+b-c)/2 = (2+2-2√2)/2.
	s := NewSystem(2)
	s.AddGE(map[int]float64{0: 1}, 0)
	s.AddGE(map[int]float64{1: 1}, 0)
	s.AddLE(map[int]float64{0: 1, 1: 1}, 2)
	_, r, err := s.Chebyshev()
	if err != nil {
		t.Fatal(err)
	}
	want := (4 - 2*math.Sqrt2) / 2
	if !approx(r, want, 1e-6) {
		t.Errorf("radius = %v, want %v", r, want)
	}
}

func TestChebyshevInfeasible(t *testing.T) {
	s := NewSystem(1)
	s.AddGE(map[int]float64{0: 1}, 5)
	s.AddLE(map[int]float64{0: 1}, 3)
	if _, _, err := s.Chebyshev(); err == nil {
		t.Error("expected error for empty polytope")
	}
}

func TestChebyshevEmptySystem(t *testing.T) {
	s := NewSystem(1)
	if _, _, err := s.Chebyshev(); err == nil {
		t.Error("expected error for unconstrained system")
	}
}

func TestSamplerUniformOnSquare(t *testing.T) {
	s := squareSystem(0, 1)
	rng := rand.New(rand.NewSource(12345))
	sampler, err := NewSampler(s, rng)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	samples := sampler.Sample(n, 200)
	if len(samples) != n {
		t.Fatalf("got %d samples", len(samples))
	}
	// All feasible.
	for _, x := range samples {
		if !s.Feasible(x, 1e-9) {
			t.Fatalf("infeasible sample %v", x)
		}
	}
	// Mean near centre, quadrant occupancy roughly uniform.
	var mx, my float64
	quad := [4]int{}
	for _, x := range samples {
		mx += x[0]
		my += x[1]
		qi := 0
		if x[0] > 0.5 {
			qi |= 1
		}
		if x[1] > 0.5 {
			qi |= 2
		}
		quad[qi]++
	}
	mx /= n
	my /= n
	if math.Abs(mx-0.5) > 0.05 || math.Abs(my-0.5) > 0.05 {
		t.Errorf("mean = (%v,%v), want near (0.5,0.5)", mx, my)
	}
	for i, q := range quad {
		frac := float64(q) / n
		if frac < 0.15 || frac > 0.35 {
			t.Errorf("quadrant %d fraction %v far from 0.25", i, frac)
		}
	}
}

func TestSamplerSimplexRegion(t *testing.T) {
	// x,y >= 0, x + y <= 1: mean of a uniform draw is (1/3, 1/3).
	s := NewSystem(2)
	s.AddGE(map[int]float64{0: 1}, 0)
	s.AddGE(map[int]float64{1: 1}, 0)
	s.AddLE(map[int]float64{0: 1, 1: 1}, 1)
	rng := rand.New(rand.NewSource(99))
	sampler, err := NewSampler(s, rng)
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000
	var mx, my float64
	for _, x := range sampler.Sample(n, 300) {
		mx += x[0]
		my += x[1]
	}
	mx /= n
	my /= n
	if math.Abs(mx-1.0/3) > 0.04 || math.Abs(my-1.0/3) > 0.04 {
		t.Errorf("mean = (%v,%v), want near (1/3,1/3)", mx, my)
	}
}

func TestSamplerHighDim(t *testing.T) {
	// 18-variable box, matching the paper's "constraints for 18 variables".
	const dim = 18
	s := NewSystem(dim)
	for i := 0; i < dim; i++ {
		s.AddBounds(i, 0, 1)
	}
	rng := rand.New(rand.NewSource(7))
	sampler, err := NewSampler(s, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range sampler.Sample(50, 500) {
		if !s.Feasible(x, 1e-9) {
			t.Fatal("infeasible high-dim sample")
		}
	}
}

func TestSamplerNoInterior(t *testing.T) {
	// Degenerate polytope: a single point (x = 3 via two inequalities).
	s := NewSystem(1)
	s.AddGE(map[int]float64{0: 1}, 3)
	s.AddLE(map[int]float64{0: 1}, 3)
	if _, err := NewSampler(s, rand.New(rand.NewSource(1))); err == nil {
		t.Error("expected error for zero-volume polytope")
	}
}

func TestSamplerDeterministicWithSeed(t *testing.T) {
	s := squareSystem(0, 1)
	mk := func() []float64 {
		sampler, err := NewSampler(s, rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatal(err)
		}
		return sampler.Next()
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different samples")
		}
	}
}

func TestSamplerThinClamp(t *testing.T) {
	s := squareSystem(0, 1)
	sampler, err := NewSampler(s, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	sampler.Thin = 0 // must clamp to 1, not hang or return the same point
	x1 := sampler.Next()
	x2 := sampler.Next()
	if x1[0] == x2[0] && x1[1] == x2[1] {
		t.Error("chain did not move with Thin=0")
	}
}

func TestNumConstraints(t *testing.T) {
	s := squareSystem(0, 1)
	if s.NumConstraints() != 4 {
		t.Errorf("NumConstraints = %d", s.NumConstraints())
	}
}
