#!/bin/sh
# ci.sh — the checks a change must pass before merging:
#   1. gofmt -l       formatting is canonical (fails on any unformatted file)
#   2. go vet         static analysis (also catches sync.Pool copies)
#   3. go build       every package compiles
#   4. go test -race  full suite under the race detector; the parallel
#                     training pipeline, the pooled inference scratch
#                     buffers and the concurrent SED/OCR perception stages
#                     are only trustworthy race-clean
#   5. fuzz smoke:    a few seconds of coverage-guided fuzzing on each
#                     text parser (VCD, TDL); regressions on previously
#                     found inputs fail immediately via the seed corpus
#   6. benchmark smoke run: one iteration of the Fig. 1 single-image
#                     pipeline plus the bit-packed kernel micro-benchmarks
#                     (imgproc word ops, morphology, perception stage), so
#                     every hot path is exercised end to end
set -eux

test -z "$(gofmt -l .)"
go vet ./...
go build ./...
go test -race ./...
go test -run '^FuzzParse$' -fuzz '^FuzzParse$' -fuzztime 5s ./internal/vcd
go test -run '^FuzzParse$' -fuzz '^FuzzParse$' -fuzztime 5s ./internal/tdl
go test -run '^$' -bench BenchmarkFig1PipelineSingleImage -benchtime 1x .
go test -run '^$' -bench BenchmarkBinaryOps -benchtime 1x ./internal/imgproc
go test -run '^$' -bench BenchmarkMorphContours -benchtime 1x ./internal/morph
go test -run '^$' -bench 'BenchmarkAnalyze$' -benchtime 1x .
