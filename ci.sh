#!/bin/sh
# ci.sh — the checks a change must pass before merging:
#   1. go vet         static analysis (also catches sync.Pool copies)
#   2. go build       every package compiles
#   3. go test -race  full suite under the race detector; the parallel
#                     training pipeline and the pooled inference scratch
#                     buffers are only trustworthy race-clean
#   4. benchmark smoke run: one iteration of the Fig. 1 single-image
#                     pipeline, so the hot path is exercised end to end
set -eux

go vet ./...
go build ./...
go test -race ./...
go test -run '^$' -bench BenchmarkFig1PipelineSingleImage -benchtime 1x .
