#!/bin/sh
# ci.sh — the checks a change must pass before merging:
#   1. gofmt -l       formatting is canonical (fails on any unformatted file)
#   2. go vet         static analysis (also catches sync.Pool copies)
#   3. go build       every package compiles
#   4. go test -race  full suite under the race detector; the parallel
#                     training pipeline, the pooled inference scratch
#                     buffers, the concurrent SED/OCR perception stages and
#                     the shared serving pipeline are only trustworthy
#                     race-clean
#   5. eval scoring invariance: the Table II matchers must produce
#                     identical tp/fp/fn under any permutation of the
#                     detection/ground-truth lists (run again explicitly so
#                     a -run filter in step 4 can never silently skip it)
#   5b. zero-alloc guards: the disabled-observability paths (nil trace,
#                     nil flight recorder, tracing-off translate hot path)
#                     must stay at exactly zero allocations per operation;
#                     run explicitly so a -run filter in step 4 can never
#                     silently skip the AllocsPerRun pins
#   6. fuzz smoke:    a few seconds of coverage-guided fuzzing on each
#                     text parser (VCD, TDL); regressions on previously
#                     found inputs fail immediately via the seed corpus
#   7. benchmark smoke run: one iteration of the Fig. 1 single-image
#                     pipeline plus the bit-packed kernel micro-benchmarks
#                     (imgproc word ops, morphology, perception stage), so
#                     every hot path is exercised end to end
#   7b. bench-regression guard: the Fig. 1 single-image pipeline must not
#                     regress more than 20% over the ns/op recorded in
#                     BENCH_06.json (median of 3 runs, to ride out shared-
#                     runner noise); the warm 128-picture batch re-run must
#                     stay under the ceiling in BENCH_07.json the same way
#   7d. corpus leg:   end to end over files — generate a 50-picture corpus
#                     with tdgen, run tdmagic -batch cold into a fresh
#                     content-addressed cache, re-run warm and assert >= 98%
#                     store hits plus byte-identical .spec outputs
#   7c. GOAMD64=v3 leg (only on avx2-capable runners): the whole tree must
#                     build and the kernel micro-benchmarks must run under
#                     the wider instruction baseline
#   8. serve smoke:   end to end over HTTP — train a tiny model, render a
#                     .td fixture, start tdserve on a random port,
#                     translate the picture twice (second reply must be a
#                     byte-identical cache hit), scrape /metrics, check
#                     /version and /debug/pprof/heap, translate once with
#                     ?debug=1 and validate the inline span trace (valid
#                     JSON, all five stage spans), run tdmagic -trace on
#                     the same picture and validate that trace too, then
#                     SIGTERM and assert a clean drain and exit 0
#   8b. verify smoke: picture -> spec -> runtime verification — synthesize
#                     a golden VCD dump from the translated spec, verify it
#                     cleanly via tdmagic -verify and POST /v1/verify
#                     (NDJSON verdict stream, then again by content-hash
#                     ref with measured-delay bounds), corrupt the dump and
#                     assert violation verdicts on both surfaces plus the
#                     tdverify_* series on /metrics
#   8c. flight scrape: GET /debug/flight after the translate + verify
#                     traffic and assert the recorder retained the traces
#                     (translate roots, a verify span, request IDs on every
#                     entry)
#   9. PGO loop:      capture a fresh CPU profile from the smoke server's
#                     /debug/pprof/profile while translating in a loop and
#                     rebuild tdserve against it — proving the checked-in
#                     cmd/tdserve/default.pgo pipeline (profile -> -pgo
#                     build) stays reproducible end to end
#  10. job smoke:     crash-safety end to end — submit a 50-picture job to
#                     tdserve's durable job engine, SIGKILL the server
#                     mid-run, restart it on the same journal and store,
#                     and assert the resumed replica finishes the job
#                     while retranslating only items not journaled done
#                     at the kill (completed items answer from the store),
#                     with the final NDJSON results byte-identical to an
#                     uninterrupted cold run
#  10b. live telemetry on the resumed job: tail /v1/jobs/{id}/events while
#                     the restarted replica drains the remainder (snapshot
#                     first, every item completed exactly once across
#                     snapshot + tail, item events flagged resumed, terminal
#                     state line, no truncation), follow the same job with
#                     tdmagic -watch to its exit code, then assert the
#                     tdstore_*/tdjobs_* series with exemplars on /metrics
#                     and the job's root trace + job_done event in
#                     /debug/flight
set -eux

test -z "$(gofmt -l .)"
go vet ./...
go build ./...
go test -race ./...
go test -run 'TestMatchPermutationInvariance|TestMatchNearestWins|TestMatchShortSegmentThreshold' -count 1 ./internal/eval
go test -run 'TestNilTraceZeroAlloc|TestNilRecorderZeroAlloc' -count 1 ./internal/obs
go test -run 'TestDisabledTracingZeroAllocOnHotPath' -count 1 ./internal/core
go test -run '^FuzzParse$' -fuzz '^FuzzParse$' -fuzztime 5s ./internal/vcd
go test -run '^FuzzParse$' -fuzz '^FuzzParse$' -fuzztime 5s ./internal/tdl
go test -run '^$' -bench BenchmarkFig1PipelineSingleImage -benchtime 1x .
go test -run '^$' -bench BenchmarkBinaryOps -benchtime 1x ./internal/imgproc
go test -run '^$' -bench BenchmarkMorphContours -benchtime 1x ./internal/morph
go test -run '^$' -bench 'BenchmarkAnalyze$' -benchtime 1x .

# --- bench-regression guard ------------------------------------------------
# Median of 3 runs of the Fig. 1 pipeline vs the ceiling in BENCH_06.json.
guard=$(mktemp)
for i in 1 2 3; do
	go test -run '^$' -bench BenchmarkFig1PipelineSingleImage -benchtime 20x . |
		sed -n 's/^BenchmarkFig1PipelineSingleImage[^0-9]*[0-9]*[[:space:]]*\([0-9]*\) ns\/op.*/\1/p'
done >"$guard"
python3 - "$guard" BENCH_06.json <<'EOF'
import json, sys
runs = sorted(int(l) for l in open(sys.argv[1]) if l.strip())
assert len(runs) == 3, f"expected 3 bench runs, parsed {runs}"
limit = json.load(open(sys.argv[2]))["regression_guard"]["max_ns_per_op"]
median = runs[1]
print(f"fig1 pipeline median {median} ns/op (limit {limit})")
assert median <= limit, f"Fig. 1 pipeline regressed: median {median} ns/op > {limit} ns/op (+20% over BENCH_06)"
EOF
rm -f "$guard"

# Median of 3 runs of the warm batch re-run vs the ceiling in BENCH_07.json.
guard=$(mktemp)
for i in 1 2 3; do
	go test -run '^$' -bench 'BenchmarkBatchEngineWarm$' -benchtime 5x . |
		sed -n 's/^BenchmarkBatchEngineWarm[^0-9]*[0-9]*[[:space:]]*\([0-9]*\) ns\/op.*/\1/p'
done >"$guard"
python3 - "$guard" BENCH_07.json <<'EOF'
import json, sys
runs = sorted(int(l) for l in open(sys.argv[1]) if l.strip())
assert len(runs) == 3, f"expected 3 bench runs, parsed {runs}"
limit = json.load(open(sys.argv[2]))["regression_guard"]["max_ns_per_op"]
median = runs[1]
print(f"warm batch re-run median {median} ns/op (limit {limit})")
assert median <= limit, f"warm batch re-run regressed: median {median} ns/op > {limit} ns/op (ceiling from BENCH_07)"
EOF
rm -f "$guard"

# --- GOAMD64=v3 leg (avx2 runners only) ------------------------------------
if grep -q avx2 /proc/cpuinfo 2>/dev/null; then
	GOAMD64=v3 go build ./...
	GOAMD64=v3 go test -run '^$' -bench BenchmarkBinaryOps -benchtime 1x ./internal/imgproc
	GOAMD64=v3 go test -run '^$' -bench BenchmarkMorphContours -benchtime 1x ./internal/morph
fi

# --- serve smoke -----------------------------------------------------------
tmp=$(mktemp -d)
serve_pid=""
cleanup() {
	[ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/tdtrain" ./cmd/tdtrain
go build -o "$tmp/tdrender" ./cmd/tdrender
go build -o "$tmp/tdserve" ./cmd/tdserve
"$tmp/tdtrain" -out "$tmp/model.gob" -g1 24 -g2 10 -g3 8
"$tmp/tdrender" -in examples/testdata/m74hc595.td -out "$tmp/pic.png" >/dev/null

"$tmp/tdserve" -model "$tmp/model.gob" -addr 127.0.0.1:0 \
	>"$tmp/serve.out" 2>"$tmp/serve.err" &
serve_pid=$!
i=0
until grep -q '^listening on ' "$tmp/serve.out" 2>/dev/null; do
	i=$((i + 1))
	test "$i" -le 100
	kill -0 "$serve_pid"
	sleep 0.2
done
addr=$(sed -n 's/^listening on //p' "$tmp/serve.out")

curl -fsS --data-binary @"$tmp/pic.png" -H 'Content-Type: image/png' \
	"http://$addr/v1/translate" >"$tmp/r1.json"
grep -q '"spo"' "$tmp/r1.json"
curl -fsS -D "$tmp/h2.txt" --data-binary @"$tmp/pic.png" -H 'Content-Type: image/png' \
	"http://$addr/v1/translate" >"$tmp/r2.json"
cmp "$tmp/r1.json" "$tmp/r2.json" # cache hit must be byte-identical
grep -qi 'x-cache: hit' "$tmp/h2.txt"
curl -fsS "http://$addr/healthz" | grep -q '"ok"'
curl -fsS -D "$tmp/mh.txt" "http://$addr/metrics" >"$tmp/metrics.txt"
grep -qi 'content-type: text/plain; version=0.0.4; charset=utf-8' "$tmp/mh.txt"
grep -q '^tdserve_cache_hits_total 1$' "$tmp/metrics.txt"
grep -q '^tdmagic_translations_total 1$' "$tmp/metrics.txt"
grep -q '^tdserve_cache_hit_ratio 0.5$' "$tmp/metrics.txt"

# Observability surface: build identity, heap profile, inline debug trace.
curl -fsS "http://$addr/version" | grep -q '"go_version"'
curl -fsS "http://$addr/debug/pprof/heap" >"$tmp/heap.pprof"
test -s "$tmp/heap.pprof"

cat >"$tmp/check_trace.py" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
trace = doc.get("trace", doc)  # ?debug=1 nests the trace; tdmagic -trace is bare
assert trace["request_id"], "trace has no request id"
spans = trace["spans"]
names = {s["name"] for s in spans}
for stage in ("translate", "binarize", "lad", "sed", "ocr", "sei"):
    assert stage in names, f"missing {stage} span, have {sorted(names)}"
for s in spans:
    assert s["start_ns"] >= 0 and s["dur_ns"] >= 0, f"negative time in {s}"
EOF

curl -fsS --data-binary @"$tmp/pic.png" -H 'Content-Type: image/png' \
	"http://$addr/v1/translate?debug=1" >"$tmp/debug.json"
python3 "$tmp/check_trace.py" "$tmp/debug.json"
# The debug run executed the stages a second time (it bypasses the cache).
curl -fsS "http://$addr/metrics" | grep -q 'tdmagic_stage_seconds_count{stage="sei"} 2'

# One-shot CLI trace over the same model and picture.
go build -o "$tmp/tdmagic" ./cmd/tdmagic
"$tmp/tdmagic" -model "$tmp/model.gob" -trace "$tmp/trace.json" "$tmp/pic.png" >/dev/null 2>&1
python3 "$tmp/check_trace.py" "$tmp/trace.json"

# --- verify smoke: picture -> spec -> runtime verification -----------------
# The translated spec synthesizes its own golden dump, which must verify
# cleanly over both the CLI and the live service; stretching every VCD
# timestamp 5x corrupts the dump and must flip the delay-bounded
# constraints to violation verdicts on both surfaces.
"$tmp/tdmagic" -model "$tmp/model.gob" -synth-vcd "$tmp/golden.vcd" "$tmp/pic.png" >/dev/null 2>&1
test -s "$tmp/golden.vcd"
"$tmp/tdmagic" -model "$tmp/model.gob" -verify -vcd "$tmp/golden.vcd" "$tmp/pic.png" 2>/dev/null |
	grep -q '^OK:'

curl -fsS -D "$tmp/vh.txt" -F image=@"$tmp/pic.png" -F vcd=@"$tmp/golden.vcd" \
	"http://$addr/v1/verify" >"$tmp/verify.ndjson"
grep -qi 'content-type: application/x-ndjson' "$tmp/vh.txt"
grep -q '"type":"spec"' "$tmp/verify.ndjson"
grep -q '"ltl":' "$tmp/verify.ndjson"
grep -q '"type":"verdict"' "$tmp/verify.ndjson"
grep -q '"ok":true' "$tmp/verify.ndjson"

# Derive tight delay bounds from the clean run's measured values, then
# re-verify by ref: the content hash alone stands in for the picture.
python3 - "$tmp/verify.ndjson" >"$tmp/bounds.json" <<'EOF'
import json, sys
delays = {}
for line in open(sys.argv[1]):
    doc = json.loads(line)
    if doc.get("type") == "verdict" and doc.get("delay"):
        m = doc["measured"]
        delays[doc["delay"]] = {"min": 0.9 * m, "max": 1.1 * m}
assert delays, "clean verification produced no delay-labelled verdicts"
json.dump({"delays": delays}, sys.stdout)
EOF
ref=$(tr -d '\r' <"$tmp/vh.txt" | awk -F': ' 'tolower($1)=="x-input-hash"{print $2}')
test -n "$ref"
curl -fsS -F ref="$ref" -F delays=@"$tmp/bounds.json" -F vcd=@"$tmp/golden.vcd" \
	"http://$addr/v1/verify" | grep -q '"ok":true'

# Corrupt the dump (stretch every timestamp 5x) and expect violations.
awk '{ if (substr($0,1,1)=="#") print "#" substr($0,2)*5; else print }' \
	"$tmp/golden.vcd" >"$tmp/bad.vcd"
curl -fsS -F ref="$ref" -F delays=@"$tmp/bounds.json" -F vcd=@"$tmp/bad.vcd" \
	"http://$addr/v1/verify" >"$tmp/verify_bad.ndjson"
grep -q '"pass":false' "$tmp/verify_bad.ndjson"
grep -q '"ok":false' "$tmp/verify_bad.ndjson"
if "$tmp/tdmagic" -model "$tmp/model.gob" -verify -vcd "$tmp/bad.vcd" \
	-delays "$tmp/bounds.json" "$tmp/pic.png" >"$tmp/verify_cli.out" 2>&1; then
	echo "verify of corrupted dump unexpectedly passed" >&2
	exit 1
fi
grep -q '^FAIL:' "$tmp/verify_cli.out"

# The verification metrics landed on the shared exposition.
curl -fsS "http://$addr/metrics" >"$tmp/vmetrics.txt"
grep -q 'tdverify_verdicts_total{outcome="pass"} [1-9]' "$tmp/vmetrics.txt"
grep -q 'tdverify_verdicts_total{outcome="violation"} [1-9]' "$tmp/vmetrics.txt"
grep -q 'tdverify_trace_bytes_total [1-9]' "$tmp/vmetrics.txt"
grep -q 'tdverify_check_seconds_count [1-9]' "$tmp/vmetrics.txt"

# --- flight scrape: the smoke traffic above left retrievable traces --------
# The recorder is on by default (-flight 256); every translate and verify
# request so far must have landed a trace with its request ID.
curl -fsS "http://$addr/debug/flight" >"$tmp/flight.json"
python3 - "$tmp/flight.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
entries = d["entries"] + d["pinned"]
assert entries, "flight recorder empty after smoke traffic"
names = {e["name"] for e in entries}
assert "translate" in names, f"no translate trace in the flight ring: {sorted(names)}"
spans = {s["name"] for e in entries for s in e.get("spans") or []}
assert "verify.check" in spans, f"no verify.check span recorded: {sorted(spans)}"
for e in entries:
    assert e["kind"] == "trace" and e["request_id"], e
EOF

# --- PGO loop: fresh profile from the live server, rebuild against it ------
curl -fsS "http://$addr/debug/pprof/profile?seconds=4" -o "$tmp/cpu.pprof" &
prof_pid=$!
# Keep the translation path hot while the profiler samples (the cache is
# bypassed with ?debug=1, so every request runs the full pipeline).
for i in $(seq 1 50); do
	curl -fsS --data-binary @"$tmp/pic.png" -H 'Content-Type: image/png' \
		"http://$addr/v1/translate?debug=1" >/dev/null
done
wait "$prof_pid"
test -s "$tmp/cpu.pprof"
go build -pgo "$tmp/cpu.pprof" -o "$tmp/tdserve_pgo" ./cmd/tdserve
go version -m "$tmp/tdserve_pgo" | grep -q 'build.*-pgo='
# The checked-in profile must be what the default build picks up.
go version -m "$tmp/tdserve" | grep -q 'build.*-pgo=.*cmd/tdserve/default.pgo'

kill -TERM "$serve_pid"
wait "$serve_pid" # non-zero exit (failed drain) fails the gate via set -e
serve_pid=""
grep -q 'drained cleanly' "$tmp/serve.err"

# --- corpus leg: batch translation with the persistent result cache --------
# Reuses the smoke model and tdmagic binary. A cold run fills the store, the
# warm re-run must answer >= 98% of the corpus from it with byte-identical
# specifications.
go build -o "$tmp/tdgen" ./cmd/tdgen
"$tmp/tdgen" -out "$tmp/corpus" -mode G1 -n 50 -seed 7 >/dev/null
"$tmp/tdmagic" -model "$tmp/model.gob" -batch "$tmp/corpus" \
	-out "$tmp/specs1" -cache "$tmp/tdcache" 2>"$tmp/cold.err"
grep -q 'batch done: items=50 .* errors=0' "$tmp/cold.err"
"$tmp/tdmagic" -model "$tmp/model.gob" -batch "$tmp/corpus" \
	-out "$tmp/specs2" -cache "$tmp/tdcache" 2>"$tmp/warm.err"
warm_hits=$(sed -n 's/.*batch done: items=50 hits=\([0-9]*\).*/\1/p' "$tmp/warm.err")
test "$warm_hits" -ge 49 # >= 98% of 50 pictures answered from the store
diff -r "$tmp/specs1" "$tmp/specs2" # warm specs must be byte-identical

# --- job-service smoke: SIGKILL mid-job, resume, no redone work -------------
# Reuses the smoke model and the tdgen corpus. A throttled server is killed
# with -9 mid-job; a second generation on the same journal and store must
# finish the job, retranslating only items the journal did not show done at
# the kill, and its results must match an uninterrupted cold run byte for
# byte.
python3 - "$tmp/corpus" >"$tmp/manifest.json" <<'EOF'
import json, os, sys
names = sorted(f for f in os.listdir(sys.argv[1]) if f.endswith(".png"))
assert len(names) == 50, names
print(json.dumps({"manifest": names}))
EOF

start_jobs_server() { # $1 out-file, extra flags follow
	out=$1
	shift
	# Deliberately not -quiet: the job lifecycle logger once self-deadlocked
	# the scheduler, and only a logging server exercises that path.
	"$tmp/tdserve" -model "$tmp/model.gob" -addr 127.0.0.1:0 \
		-store "$tmp/jobstore" -jobs "$tmp/jobroot" \
		-jobs-manifest-root "$tmp/corpus" -jobs-workers 2 "$@" \
		>"$out" 2>"$out.err" &
	serve_pid=$!
	i=0
	until grep -q '^listening on ' "$out" 2>/dev/null; do
		i=$((i + 1))
		test "$i" -le 100
		kill -0 "$serve_pid"
		sleep 0.2
	done
	addr=$(sed -n 's/^listening on //p' "$out")
}

job_done_count() {
	curl -fsS "http://$addr/v1/jobs/$1" |
		python3 -c 'import json,sys; d=json.load(sys.stdin); print(d["stats"]["done"])'
}

start_jobs_server "$tmp/jobs1.out" -jobs-throttle 60ms
curl -fsS "http://$addr/readyz" | grep -q '"ready"'
curl -fsS -X POST -H 'Content-Type: application/json' \
	--data @"$tmp/manifest.json" "http://$addr/v1/jobs" >"$tmp/submit.json"
job_id=$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["id"])' "$tmp/submit.json")

# Wait for partial progress, then kill -9: no drain, no checkpoint flush.
i=0
done_at_kill=0
while [ "$done_at_kill" -lt 10 ]; do
	i=$((i + 1))
	test "$i" -le 300
	sleep 0.1
	done_at_kill=$(job_done_count "$job_id")
done
kill -KILL "$serve_pid"
wait "$serve_pid" || true
serve_pid=""

# Second generation: same journal, same store, throttled just enough that
# the live event tail and the watch attach while the resumed job is still
# draining its remainder.
start_jobs_server "$tmp/jobs2.out" -jobs-throttle 30ms
curl -fsSN "http://$addr/v1/jobs/$job_id/events?items=1" >"$tmp/resume_events.ndjson" &
tail_pid=$!
# tdmagic -watch follows the same stream and must exit 0 on "done".
"$tmp/tdmagic" -watch "http://$addr/v1/jobs/$job_id" 2>"$tmp/watch.err"
grep -q "job $job_id" "$tmp/watch.err"
grep -q '50/50 done' "$tmp/watch.err"
wait "$tail_pid" # the tail EOFs when the finished job closes its stream
curl -fsS "http://$addr/v1/jobs/$job_id" | grep -q '"state":"done"'

# The tail is the resume invariant, event by event: items journaled done
# at the kill appear done in the snapshot and never again; the remainder
# completes exactly once, flagged as resumed work.
python3 - "$tmp/resume_events.ndjson" <<'EOF'
import json, sys
evs = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
assert evs and evs[0]["type"] == "snapshot", evs[:1]
snap = evs[0]
done_at_resume = {it["name"] for it in snap.get("items") or [] if it["state"] == "done"}
total = snap["stats"]["total"]
per = {}
for e in evs[1:]:
    if e["type"] == "item_done":
        per[e["item"]] = per.get(e["item"], 0) + 1
        assert e.get("resumed"), f"item_done in a resumed job not flagged resumed: {e}"
assert per, "event tail attached only after the job finished (not live)"
dups = {k: v for k, v in per.items() if v > 1}
assert not dups, f"items completed more than once in the tail: {dups}"
overlap = done_at_resume & set(per)
assert not overlap, f"items done at the kill completed again: {sorted(overlap)[:5]}"
assert len(done_at_resume) + len(per) == total, (len(done_at_resume), len(per), total)
assert not any(e["type"] == "truncated" for e in evs), "tail was truncated"
assert evs[-1]["type"] == "state" and evs[-1]["state"] == "done", evs[-1]
print(f"resume tail: {len(done_at_resume)} done at kill + {len(per)} live = {total}")
EOF

# The resume invariant: items journaled done at the kill answer from the
# store, so the second process translates at most the remainder.
translated=$(curl -fsS "http://$addr/metrics" |
	sed -n 's/^tdmagic_translations_total \([0-9]*\)$/\1/p')
test "$translated" -le $((50 - done_at_kill))
curl -fsS "http://$addr/v1/jobs/$job_id/results" >"$tmp/resumed.ndjson"
test "$(wc -l <"$tmp/resumed.ndjson")" -eq 50

# Second-level store counters and the exemplar-linked job histogram: the
# resumed run hits the store for journaled items, misses and writes back
# the remainder, and every item attempt lands in tdjobs_item_seconds with
# the job ID as its exemplar ref.
curl -fsS "http://$addr/metrics" >"$tmp/jmetrics.txt"
grep -q '^tdstore_hits_total [1-9]' "$tmp/jmetrics.txt"
grep -q '^tdstore_misses_total [1-9]' "$tmp/jmetrics.txt"
grep -q '^tdstore_writes_total [1-9]' "$tmp/jmetrics.txt"
grep -q '^tdstore_corrupt_total 0$' "$tmp/jmetrics.txt"
grep -q '^tdjobs_item_seconds_count [1-9]' "$tmp/jmetrics.txt"
grep -q "^# EXEMPLAR tdjobs_item_seconds_bucket.* $job_id " "$tmp/jmetrics.txt"

# The finished job left its root trace and terminal event in the flight
# recorder, retrievable by job ID.
curl -fsS "http://$addr/debug/flight?request_id=$job_id" >"$tmp/jobflight.json"
python3 - "$tmp/jobflight.json" "$job_id" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
entries = d["entries"] + d["pinned"]
kinds = {(e["kind"], e["name"]) for e in entries}
assert ("trace", "job") in kinds, f"no job trace in flight for {sys.argv[2]}: {sorted(kinds)}"
assert ("event", "job_done") in kinds, f"no job_done flight event: {sorted(kinds)}"
EOF
kill -TERM "$serve_pid"
wait "$serve_pid"
serve_pid=""
grep -q 'drained cleanly' "$tmp/jobs2.out.err"

# Uninterrupted cold run on fresh dirs: results must be byte-identical.
rm -rf "$tmp/jobstore" "$tmp/jobroot"
start_jobs_server "$tmp/jobs3.out"
curl -fsS -X POST -H 'Content-Type: application/json' \
	--data @"$tmp/manifest.json" "http://$addr/v1/jobs" >"$tmp/submit2.json"
cold_id=$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["id"])' "$tmp/submit2.json")
i=0
until curl -fsS "http://$addr/v1/jobs/$cold_id" | grep -q '"state":"done"'; do
	i=$((i + 1))
	test "$i" -le 300
	sleep 0.2
done
curl -fsS "http://$addr/v1/jobs/$cold_id/results" >"$tmp/cold.ndjson"
kill -TERM "$serve_pid"
wait "$serve_pid"
serve_pid=""
cmp "$tmp/resumed.ndjson" "$tmp/cold.ndjson" # crash-resume is invisible in the output
