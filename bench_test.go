// Benchmarks regenerating every table and figure of the paper's evaluation
// (Sec. VI), plus ablations of the design choices DESIGN.md calls out. The
// reproduced quantities are attached to each benchmark via ReportMetric, so
// `go test -bench=. -benchmem` prints both the runtime cost and the
// paper-facing numbers (EXPERIMENTS.md records the correspondence).
package tdmagic

import (
	"math/rand"
	"sync"
	"testing"

	"tdmagic/internal/core"
	"tdmagic/internal/dataset"
	"tdmagic/internal/eval"
	"tdmagic/internal/imgproc"
	"tdmagic/internal/lad"
	"tdmagic/internal/polytope"
	"tdmagic/internal/spo"
	"tdmagic/internal/tdgen"
)

// Shared fixtures, trained/generated once per benchmark binary.
var (
	benchOnce   sync.Once
	benchPipe   *core.Pipeline
	benchVal    []*dataset.Sample
	benchCorpus []*dataset.Sample
	benchErr    error
)

func benchSetup(b *testing.B) (*core.Pipeline, []*dataset.Sample, []*dataset.Sample) {
	b.Helper()
	benchOnce.Do(func() {
		opts := eval.DefaultOptions()
		benchPipe, benchErr = eval.TrainPipeline(opts)
		if benchErr != nil {
			return
		}
		benchVal, benchErr = eval.GenValidationSet(opts)
		if benchErr != nil {
			return
		}
		_, benchCorpus, benchErr = eval.CorpusStats(opts)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchPipe, benchVal, benchCorpus
}

// BenchmarkTableI_EdgeDetectionValidation regenerates Table I: edge
// detection accuracy on held-out synthetic pictures. Paper: P 0.999, R 1,
// mAP@.5 0.995, mAP@.5:.95 0.995.
func BenchmarkTableI_EdgeDetectionValidation(b *testing.B) {
	pipe, val, _ := benchSetup(b)
	var res *eval.TableIResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = eval.TableI(pipe, val)
	}
	all := res.Rows[0]
	b.ReportMetric(all.P, "P")
	b.ReportMetric(all.R, "R")
	b.ReportMetric(all.MAP50, "mAP@.5")
	b.ReportMetric(all.MAP5095, "mAP@.5:.95")
}

// BenchmarkOCRSyntheticValidation regenerates the Sec. VI OCR validation on
// synthetic data. Paper: accuracy 1.0 for both PaddleOCR tasks.
func BenchmarkOCRSyntheticValidation(b *testing.B) {
	pipe, val, _ := benchSetup(b)
	var res *eval.OCRValResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = eval.OCRSynthetic(pipe, val)
	}
	b.ReportMetric(res.Accuracy[dataset.RoleSignalName], "acc-name")
	b.ReportMetric(res.Accuracy[dataset.RoleSignalValue], "acc-value")
	b.ReportMetric(res.Accuracy[dataset.RoleTimeConstraint], "acc-constraint")
}

// BenchmarkCorpusBasicStatistics regenerates Sec. VI.1's corpus statistics.
// Paper: 30 TDs (6/19/5 with 1/2/3 signals), 59 signals (14/38/4/3 with
// 1-4 edges).
func BenchmarkCorpusBasicStatistics(b *testing.B) {
	var res *eval.StatsResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, _, err = eval.CorpusStats(eval.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Stats.TDs), "TDs")
	b.ReportMetric(float64(res.Stats.Signals), "signals")
	b.ReportMetric(float64(res.Stats.Constraints), "constraints")
}

// BenchmarkTableII_ExtrapolationDetection regenerates Table II: object
// detection on the industrial-style corpus. Paper: edge P=1 with R
// 0.889-1, V-line 1/0.969, H-line 1/0.972, arrow 0.951/0.929.
func BenchmarkTableII_ExtrapolationDetection(b *testing.B) {
	pipe, _, corpus := benchSetup(b)
	var res *eval.TableIIResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = eval.TableII(pipe, corpus)
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.P, "P-"+row.Name)
		b.ReportMetric(row.R, "R-"+row.Name)
	}
}

// BenchmarkTableIII_ExtrapolationOCR regenerates Table III: OCR accuracy on
// the corpus. Paper: names 0.915, values 0.925, time constraints 0.845.
func BenchmarkTableIII_ExtrapolationOCR(b *testing.B) {
	pipe, _, corpus := benchSetup(b)
	var res *eval.OCRValResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = eval.TableIII(pipe, corpus)
	}
	b.ReportMetric(res.Accuracy[dataset.RoleSignalName], "acc-name")
	b.ReportMetric(res.Accuracy[dataset.RoleSignalValue], "acc-value")
	b.ReportMetric(res.Accuracy[dataset.RoleTimeConstraint], "acc-constraint")
}

// BenchmarkOverallPipelineExtrapolation regenerates Sec. VI.3's overall
// performance. Paper: 76.7% template-level, 50.0% totally correct.
func BenchmarkOverallPipelineExtrapolation(b *testing.B) {
	pipe, _, corpus := benchSetup(b)
	var res *eval.OverallResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = eval.Overall(pipe, corpus)
	}
	b.ReportMetric(100*float64(res.TemplateLevel)/float64(res.Total), "template-pct")
	b.ReportMetric(100*float64(res.TotallyOK)/float64(res.Total), "total-pct")
	b.ReportMetric(res.PartialRecall, "partial-recall")
}

// fig1Diagram is the quickstart's reconstruction of paper Fig. 1.
func fig1Diagram() *Diagram {
	return &Diagram{
		Name: "fig1-D",
		Signals: []Signal{
			{Name: "X", Kind: Digital, Edges: []Edge{
				{Type: RiseStep, X0: 0.08, X1: 0.12, YLow: 0.1, YHigh: 0.9, HasEvent: true},
				{Type: FallStep, X0: 0.30, X1: 0.34, YLow: 0.1, YHigh: 0.9, HasEvent: true},
				{Type: RiseStep, X0: 0.58, X1: 0.62, YLow: 0.1, YHigh: 0.9, HasEvent: true},
				{Type: FallStep, X0: 0.82, X1: 0.86, YLow: 0.1, YHigh: 0.9},
			}},
			{Name: "Y", Kind: Digital, Edges: []Edge{
				{Type: RiseStep, X0: 0.42, X1: 0.46, YLow: 0.1, YHigh: 0.9, HasEvent: true},
				{Type: FallStep, X0: 0.70, X1: 0.74, YLow: 0.1, YHigh: 0.9},
			}},
		},
		Arrows: []Arrow{
			{From: EventRef{Signal: 0, Edge: 0}, To: EventRef{Signal: 0, Edge: 1}, Label: "t_{1}", Y: 0.1},
			{From: EventRef{Signal: 0, Edge: 0}, To: EventRef{Signal: 1, Edge: 0}, Label: "t_{2}", Y: 0.5},
			{From: EventRef{Signal: 0, Edge: 1}, To: EventRef{Signal: 0, Edge: 2}, Label: "t_{3}", Y: 0.9},
		},
		Style: DefaultStyle(),
	}
}

// BenchmarkFig1PipelineSingleImage measures the translate latency on the
// paper's Fig. 1 diagram and reports whether the SPO comes out exactly
// right (Fig. 3).
func BenchmarkFig1PipelineSingleImage(b *testing.B) {
	pipe, _, _ := benchSetup(b)
	sample, err := fig1Diagram().Render()
	if err != nil {
		b.Fatal(err)
	}
	var got *spo.SPO
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, _, err = pipe.Translate(sample.Image)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(boolMetric(got.TotalEqual(sample.Truth)), "totally-correct")
}

// BenchmarkFig4LeftDatasheet translates the Fig. 4 (left) diagram in both
// the clean and the Example-3 (thick steps, solid lines) variant.
func BenchmarkFig4LeftDatasheet(b *testing.B) {
	pipe, _, _ := benchSetup(b)
	clean, thick := fig4LeftVariant(false), fig4LeftVariant(true)
	cs, err := clean.Render()
	if err != nil {
		b.Fatal(err)
	}
	ts, err := thick.Render()
	if err != nil {
		b.Fatal(err)
	}
	var cleanOK, thickOK bool
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got, _, err := pipe.Translate(cs.Image); err == nil {
			cleanOK = got.TemplateEqual(cs.Truth)
		}
		if got, _, err := pipe.Translate(ts.Image); err == nil {
			thickOK = got.TemplateEqual(ts.Truth)
		} else {
			thickOK = false
		}
	}
	b.ReportMetric(boolMetric(cleanOK), "clean-template-ok")
	b.ReportMetric(boolMetric(thickOK), "thick-template-ok")
}

func fig4LeftVariant(thick bool) *Diagram {
	st := DefaultStyle()
	if thick {
		st.SolidVLines = true
		st.LineStroke = 2
	}
	return &Diagram{
		Name: "fig4-left",
		Signals: []Signal{
			{Name: "V_{INA}", Kind: Digital, Edges: []Edge{
				{Type: RiseStep, X0: 0.10, X1: 0.16, YLow: 0.1, YHigh: 0.9, HasEvent: true, Thick: thick},
				{Type: FallStep, X0: 0.55, X1: 0.61, YLow: 0.1, YHigh: 0.9, HasEvent: true, Thick: thick},
			}},
			{Name: "V_{OUTA}", Kind: Ramp, BoundHigh: "V_{CC}", BoundLow: "GND", Edges: []Edge{
				{Type: RiseRamp, X0: 0.20, X1: 0.38, YLow: 0.1, YHigh: 0.9, Threshold: 0.9, ThresholdText: "90%", HasEvent: true},
				{Type: FallRamp, X0: 0.65, X1: 0.85, YLow: 0.1, YHigh: 0.9, Threshold: 0.1, ThresholdText: "10%", HasEvent: true},
			}},
		},
		Arrows: []Arrow{
			{From: EventRef{Signal: 0, Edge: 0}, To: EventRef{Signal: 1, Edge: 0}, Label: "t_{D(on)}", Y: 0.3},
			{From: EventRef{Signal: 0, Edge: 1}, To: EventRef{Signal: 1, Edge: 1}, Label: "t_{D(off)}", Y: 0.7},
		},
		Style: st,
	}
}

// BenchmarkFig4RightSPISetupHold translates the Fig. 4 (right) SI/SCK
// setup-hold diagram (paper Example 2 — reported all-correct).
func BenchmarkFig4RightSPISetupHold(b *testing.B) {
	pipe, _, _ := benchSetup(b)
	d := &Diagram{
		Name: "fig4-right",
		Signals: []Signal{
			{Name: "SI", Kind: DoubleRamp, Edges: []Edge{
				{Type: Double, X0: 0.15, X1: 0.22, YLow: 0.15, YHigh: 0.85, Threshold: 0.5, ThresholdText: "50%", HasEvent: true},
				{Type: Double, X0: 0.70, X1: 0.77, YLow: 0.15, YHigh: 0.85, Threshold: 0.5, ThresholdText: "50%", HasEvent: true},
			}},
			{Name: "SCK", Kind: Ramp, Edges: []Edge{
				{Type: RiseRamp, X0: 0.42, X1: 0.50, YLow: 0.15, YHigh: 0.85, Threshold: 0.5, ThresholdText: "50%", HasEvent: true},
			}},
		},
		Arrows: []Arrow{
			{From: EventRef{Signal: 0, Edge: 0}, To: EventRef{Signal: 1, Edge: 0}, Label: "t_{s}", Y: 0.35},
			{From: EventRef{Signal: 1, Edge: 0}, To: EventRef{Signal: 0, Edge: 1}, Label: "t_{h}", Y: 0.65},
		},
		Style: DefaultStyle(),
	}
	sample, err := d.Render()
	if err != nil {
		b.Fatal(err)
	}
	var ok bool
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, _, err := pipe.Translate(sample.Image)
		if err != nil {
			b.Fatal(err)
		}
		ok = got.TotalEqual(sample.Truth)
	}
	b.ReportMetric(boolMetric(ok), "totally-correct")
}

// BenchmarkFig5ConstraintSampling measures the L-TD-G core algorithm
// (paper Fig. 5): building the case-3 constraint system over the layout
// variables and drawing a uniform sample with hit-and-run MCMC.
func BenchmarkFig5ConstraintSampling(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		sys := polytope.NewSystem(16)
		for v := 0; v < 16; v++ {
			sys.AddBounds(v, 0, 1)
		}
		// Case-3 inter-relation distances and margins (Sec. IV Group 2.4).
		sys.AddDiffGE(1, 0, 0.06)
		sys.AddDiffGE(3, 2, 0.06)
		sys.AddDiffGE(2, 1, 0.10)
		sys.AddDiffGE(5, 4, 0.06)
		sys.AddDiffGE(7, 6, 0.06)
		sys.AddDiffGE(6, 5, 0.10)
		sys.AddDiffGE(4, 1, 0.04)
		sys.AddDiffGE(6, 3, 0.04)
		sampler, err := polytope.NewSampler(sys, rng)
		if err != nil {
			b.Fatal(err)
		}
		_ = sampler.Next()
	}
}

// BenchmarkFig6Fig7Extrapolation translates two corpus entries in the
// styles of paper Figs. 6 and 7: a multi-signal TD (Fig. 6 shows TD-Magic
// extrapolating to three signals) and a dense-threshold TD with outward
// arrows (Fig. 7).
func BenchmarkFig6Fig7Extrapolation(b *testing.B) {
	pipe, _, corpus := benchSetup(b)
	multi := corpus[6] // ind-07: three signals
	dense := corpus[8] // ind-09: dense thresholds
	var recall float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recall = 0
		for _, s := range []*dataset.Sample{multi, dense} {
			if got, _, err := pipe.Translate(s.Image); err == nil {
				recall += got.ConstraintRecall(s.Truth)
			}
		}
		recall /= 2
	}
	b.ReportMetric(recall, "constraint-recall")
}

// BenchmarkAblationArrowExpand toggles Algorithm 2's EXPAND step: without
// edge-box expansion, touching plateaus are not filtered and masquerade as
// arrow candidates.
func BenchmarkAblationArrowExpand(b *testing.B) {
	pipe, _, corpus := benchSetup(b)
	run := func(expand int) float64 {
		p := *pipe
		p.SEICfg.Expand = expand
		res := eval.Overall(&p, corpus)
		return 100 * float64(res.TemplateLevel) / float64(res.Total)
	}
	var with, without float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		with = run(pipe.SEICfg.Expand)
		without = run(-3) // shrink instead of expand
	}
	b.ReportMetric(with, "template-pct-expand")
	b.ReportMetric(without, "template-pct-noexpand")
}

// BenchmarkAblationDashBridging toggles LAD's dash bridging (the closing
// that turns dashed annotation lines into solid contours).
func BenchmarkAblationDashBridging(b *testing.B) {
	pipe, _, corpus := benchSetup(b)
	run := func(cfg lad.Config) float64 {
		p := *pipe
		p.LADCfg = cfg
		res := eval.Overall(&p, corpus)
		return 100 * float64(res.TemplateLevel) / float64(res.Total)
	}
	noBridge := pipe.LADCfg
	noBridge.VBridge, noBridge.HBridge = 1, 1
	var with, without float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		with = run(pipe.LADCfg)
		without = run(noBridge)
	}
	b.ReportMetric(with, "template-pct-bridged")
	b.ReportMetric(without, "template-pct-unbridged")
}

// BenchmarkAblationTrainingMix compares training on G1 only against the
// full G1+G2+G3 mix (the paper motivates G2/G3 with big signals and ramp
// shapes).
func BenchmarkAblationTrainingMix(b *testing.B) {
	_, _, corpus := benchSetup(b)
	g1Only := eval.DefaultOptions()
	g1Only.TrainG2, g1Only.TrainG3 = 0, 0
	pipeG1, err := eval.TrainPipeline(g1Only)
	if err != nil {
		b.Fatal(err)
	}
	var mixed, only float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mixed = 100 * float64(eval.Overall(benchPipe, corpus).TemplateLevel) / 30
		only = 100 * float64(eval.Overall(pipeG1, corpus).TemplateLevel) / 30
	}
	b.ReportMetric(mixed, "template-pct-g123")
	b.ReportMetric(only, "template-pct-g1only")
}

// BenchmarkAblationOCRLexicon toggles the signal-name/value lexicons
// (the paper's "prepared database for common signal names takes effect").
func BenchmarkAblationOCRLexicon(b *testing.B) {
	pipe, _, corpus := benchSetup(b)
	bare := *pipe
	bare.SEICfg.NameLexicon = nil
	bare.SEICfg.ValueLexicon = nil
	var with, without float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		with = 100 * float64(eval.Overall(pipe, corpus).TotallyOK) / 30
		without = 100 * float64(eval.Overall(&bare, corpus).TotallyOK) / 30
	}
	b.ReportMetric(with, "total-pct-lexicon")
	b.ReportMetric(without, "total-pct-nolexicon")
}

// BenchmarkGenerateSyntheticTD measures L-TD-G throughput (one labelled
// picture per iteration, the paper generated 15,000).
func BenchmarkGenerateSyntheticTD(b *testing.B) {
	g := tdgen.New(tdgen.DefaultConfig(tdgen.G1), rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Generate(); err != nil {
			b.Fatal(err)
		}
	}
}

// boolMetric encodes a success flag as a 0/1 metric.
func boolMetric(ok bool) float64 {
	if ok {
		return 1
	}
	return 0
}

// Silence the unused-import check for sei when configs change shape.

// BenchmarkNoiseRobustness runs the noise-degradation extension experiment
// (EXPERIMENTS.md): scanner specks are added to synthetic pictures and SPO
// extraction is re-measured.
func BenchmarkNoiseRobustness(b *testing.B) {
	pipe, _, _ := benchSetup(b)
	var res *eval.RobustnessResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = eval.NoiseRobustness(pipe, 2001, 10, []int{0, 2000})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Points[0].TemplateLevel, "template-clean")
	b.ReportMetric(res.Points[1].TemplateLevel, "template-noisy")
}

// BenchmarkAnalyze measures the perception stages alone (binarise, LAD
// morphology, SED proposal+classify, OCR detect+read) on the Fig. 1 picture —
// the per-image hot path the bit-packed kernels accelerate, without the SEI
// graph construction.
func BenchmarkAnalyze(b *testing.B) {
	pipe, _, _ := benchSetup(b)
	sample, err := fig1Diagram().Render()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pipe.Analyze(sample.Image)
	}
}

// BenchmarkBatchTranslateThroughput measures concurrent batch translation
// over the industrial corpus (pictures per second with all cores).
func BenchmarkBatchTranslateThroughput(b *testing.B) {
	pipe, _, corpus := benchSetup(b)
	imgs := make([]*imgproc.Gray, len(corpus))
	for i, s := range corpus {
		imgs[i] = s.Image
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipe.TranslateAll(imgs, 0)
	}
	b.ReportMetric(float64(len(imgs)), "pictures/op")
}
