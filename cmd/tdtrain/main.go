// Command tdtrain trains the TD-Magic pipeline (the SED edge classifier and
// the OCR glyph templates) on synthetic L-TD-G data and saves the trained
// model.
//
// Usage:
//
//	tdtrain -out model.gob [-g1 64 -g2 32 -g3 24] [-seed 1] [-epochs 30]
//	        [-workers N] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"

	"tdmagic/internal/core"
	"tdmagic/internal/eval"
	"tdmagic/internal/version"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tdtrain: ")
	var (
		out     = flag.String("out", "", "output model file (required)")
		g1      = flag.Int("g1", 64, "G1 training pictures")
		g2      = flag.Int("g2", 32, "G2 training pictures")
		g3      = flag.Int("g3", 24, "G3 training pictures")
		seed    = flag.Int64("seed", 1, "random seed")
		epochs  = flag.Int("epochs", 30, "SED training epochs")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel workers for generation and training (results are worker-count invariant)")
		cpuProf = flag.String("cpuprofile", "", "write CPU profile to file")
		memProf = flag.String("memprofile", "", "write heap profile to file on exit")

		showVersion = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.Get())
		return
	}
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	opts := eval.DefaultOptions()
	opts.Seed = *seed
	opts.TrainG1, opts.TrainG2, opts.TrainG3 = *g1, *g2, *g3
	opts.Workers = *workers
	train, err := eval.GenTrainingSet(opts)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultTrainConfig()
	cfg.SEDTrain.Epochs = *epochs
	cfg.NameLexicon = eval.NameLexicon()
	cfg.ValueLexicon = eval.ValueLexicon()
	cfg.Workers = *workers
	pipe, err := core.Train(rand.New(rand.NewSource(*seed)), train, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := pipe.SaveFile(*out); err != nil {
		log.Fatal(err)
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("trained on %d pictures (G1=%d G2=%d G3=%d), model saved to %s\n",
		len(train), *g1, *g2, *g3, *out)
}
