// Command tdrender rasterises a textual timing-diagram description (the
// .td language of internal/tdl) into a PNG, and prints the ground-truth
// SPO the description denotes.
//
// Usage:
//
//	tdrender -in diagram.td -out diagram.png [-spec]
//
// Together with tdmagic this closes the loop: author a diagram as text,
// render it, translate the picture back, and compare the two
// specifications.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"tdmagic/internal/tdl"
	"tdmagic/internal/version"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tdrender: ")
	var (
		in          = flag.String("in", "", ".td description file (required)")
		out         = flag.String("out", "", "output PNG file (required)")
		spec        = flag.Bool("spec", true, "print the diagram's ground-truth SPO")
		showVersion = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.Get())
		return
	}
	if *in == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	text, err := os.ReadFile(*in)
	if err != nil {
		log.Fatal(err)
	}
	d, err := tdl.Parse(string(text))
	if err != nil {
		log.Fatal(err)
	}
	sample, err := d.Render()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := sample.Image.EncodePNG(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%dx%d)\n", *out, sample.Image.W, sample.Image.H)
	if *spec {
		fmt.Println("ground-truth specification:")
		fmt.Print(sample.Truth.SpecText())
	}
}
