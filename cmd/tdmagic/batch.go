package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"tdmagic/internal/batch"
	"tdmagic/internal/core"
	"tdmagic/internal/store"
)

// runBatch translates every *.png under dir through the streaming batch
// executor, writing one <name>.spec per picture into out (or the
// specifications to stdout when out is empty). With cacheDir set, results
// are persisted in the content-addressed store, so a re-run — after a
// crash, or over a corpus that only grew — translates only what is
// missing. Per-picture failures are reported on stderr and counted; the
// run continues past them and the process exits 1 at the end.
func runBatch(pipe *core.Pipeline, dir, out, cacheDir string, workers int) {
	src, err := batch.Dir(dir)
	if err != nil {
		log.Fatal(err)
	}
	opts := batch.Options{Workers: workers}
	if cacheDir != "" {
		st, err := store.Open(cacheDir)
		if err != nil {
			log.Fatal(err)
		}
		opts.Store = st
		opts.Config = pipe.ConfigHash()
	}
	if out != "" {
		if err := os.MkdirAll(out, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	start := time.Now()
	badNames := 0
	stats, err := batch.Run(context.Background(), pipe, src, opts, func(r batch.Result) error {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "tdmagic: %s: %v\n", r.Name, r.Err)
			return nil
		}
		if out == "" {
			fmt.Printf("== %s ==\n%s", r.Name, r.Spec)
			return nil
		}
		if err := writeSpec(out, r.Name, r.Spec); err != nil {
			fmt.Fprintf(os.Stderr, "tdmagic: %s: %v\n", r.Name, err)
			badNames++
		}
		return nil
	})
	if err != nil {
		log.Fatalf("batch: %v", err)
	}
	fmt.Fprintf(os.Stderr, "tdmagic: batch done: items=%d hits=%d misses=%d errors=%d elapsed=%s\n",
		stats.Items, stats.Hits, stats.Misses, stats.Errors, time.Since(start).Round(time.Millisecond))
	if stats.Errors > 0 || badNames > 0 {
		os.Exit(1)
	}
}

// writeSpec writes one translated specification as <name>.spec inside the
// output directory. The name is validated first: a crafted corpus entry
// like "../x.png" (stem "../x") must never place a file outside out.
func writeSpec(out, name, spec string) error {
	if err := batch.SafeName(name); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(out, name+".spec"), []byte(spec), 0o644)
}
