// -watch: a live progress view over a tdserve job's event stream.
//
// The job URL's /events endpoint streams NDJSON lifecycle events — a
// snapshot first, then claims, retries, quarantines, completions with
// store hit/miss, checkpoints and the terminal state. runWatch renders
// them as a single carriage-return progress line on stderr and exits
// with the job's outcome. A stream that ends without a terminal state
// (the server drained for a restart) is reconnected: the fresh snapshot
// re-baselines the counters, so a watch rides through a crash-resume
// cycle and keeps counting from the journal's truth.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"tdmagic/internal/jobs"
)

// watchState aggregates what the progress line shows. Counter baselines
// come from snapshots (journal truth); item events advance them live.
type watchState struct {
	job         string
	state       jobs.State
	total       int
	done        int
	quarantined int
	hits        int
	misses      int
	retries     int
	dropped     uint64
	lastErr     string
}

func (ws *watchState) applyStats(st *jobs.Stats) {
	if st == nil {
		return
	}
	ws.total = st.Total
	ws.done = st.Done
	ws.quarantined = st.Quarantined
	ws.hits = st.Hits
	ws.misses = st.Misses
	ws.retries = st.Retries
}

// apply folds one event into the state and reports whether the progress
// line changed.
func (ws *watchState) apply(ev jobs.Event) bool {
	if ev.Job != "" {
		ws.job = ev.Job
	}
	switch ev.Type {
	case jobs.EventSnapshot, jobs.EventSubmitted, jobs.EventResumed, jobs.EventTerminal:
		if ev.State != "" {
			ws.state = ev.State
		}
		ws.lastErr = ev.Error
		ws.applyStats(ev.Stats)
		return true
	case jobs.EventDone:
		ws.done++
		if ev.Cached != nil && *ev.Cached {
			ws.hits++
		} else {
			ws.misses++
		}
		return true
	case jobs.EventRetried:
		ws.retries++
		return true
	case jobs.EventQuarantined:
		ws.quarantined++
		return true
	case jobs.EventTruncated:
		ws.dropped += ev.Dropped
		return true
	}
	return false
}

func (ws *watchState) line() string {
	b := fmt.Sprintf("job %s %-9s %d/%d done", ws.job, ws.state, ws.done, ws.total)
	if ws.hits+ws.misses > 0 {
		b += fmt.Sprintf("  hits %d  misses %d", ws.hits, ws.misses)
	}
	if ws.retries > 0 {
		b += fmt.Sprintf("  retries %d", ws.retries)
	}
	if ws.quarantined > 0 {
		b += fmt.Sprintf("  quarantined %d", ws.quarantined)
	}
	if ws.dropped > 0 {
		b += fmt.Sprintf("  (stream dropped %d events)", ws.dropped)
	}
	return b
}

// runWatch follows the job until a terminal state and returns the exit
// code: 0 for done, 1 for failed or cancelled (or an unreachable job).
func runWatch(jobURL string) int {
	base := strings.TrimRight(jobURL, "/")
	var ws watchState
	render := func() {
		// \r + erase-to-EOL keeps one live line without assuming width.
		fmt.Fprintf(os.Stderr, "\r\x1b[K%s", ws.line())
	}
	connFailures := 0
	for {
		resp, err := http.Get(base + "/events")
		if err != nil {
			if connFailures++; connFailures > 30 {
				fmt.Fprintf(os.Stderr, "\nwatch: %v\n", err)
				return 1
			}
			time.Sleep(time.Second)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			fmt.Fprintf(os.Stderr, "watch: %s/events: %s\n", base, resp.Status)
			return 1
		}
		connFailures = 0
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			var ev jobs.Event
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				continue // skip unparseable lines rather than dying mid-job
			}
			if ws.apply(ev) {
				render()
			}
			if ev.Type == jobs.EventTerminal {
				resp.Body.Close()
				fmt.Fprintln(os.Stderr)
				if ws.lastErr != "" {
					fmt.Fprintf(os.Stderr, "watch: job %s: %s\n", ws.state, ws.lastErr)
				}
				if ws.state == jobs.StateDone {
					return 0
				}
				return 1
			}
		}
		resp.Body.Close()
		if ws.state.Terminal() {
			// Already-finished job: the stream is snapshot-then-EOF with no
			// terminal event to react to.
			fmt.Fprintln(os.Stderr)
			if ws.state == jobs.StateDone {
				return 0
			}
			return 1
		}
		// Stream ended without a terminal state: the server is draining or
		// restarting. Reconnect; the next snapshot re-baselines everything.
		time.Sleep(time.Second)
	}
}
