// Command tdmagic translates a timing-diagram PNG into its SPO formal
// specification.
//
// Usage:
//
//	tdmagic -model model.gob diagram.png              # textual specification
//	tdmagic -model model.gob -dot diagram.png         # Graphviz DAG (Fig. 3)
//	tdmagic -model model.gob -ltl diagram.png         # temporal-logic export
//	tdmagic -model model.gob -sva diagram.png         # SystemVerilog assertions
//	tdmagic -model model.gob -report diagram.png      # detection details
//	tdmagic -model model.gob -overlay o.png diagram.png  # annotated picture
//
// Train a model first with tdtrain.
package main

import (
	"flag"
	"fmt"
	"image/png"
	"log"
	"os"

	"tdmagic/internal/core"
	"tdmagic/internal/imgproc"
	"tdmagic/internal/ltl"
	"tdmagic/internal/sva"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tdmagic: ")
	var (
		model   = flag.String("model", "", "trained model file from tdtrain (required)")
		dot     = flag.Bool("dot", false, "emit the SPO as a Graphviz digraph")
		asLTL   = flag.Bool("ltl", false, "emit a temporal-logic formula")
		asSVA   = flag.Bool("sva", false, "emit SystemVerilog assertions")
		report  = flag.Bool("report", false, "also print detection details")
		overlay = flag.String("overlay", "", "write the annotated picture (paper Fig. 6/7 style) to this PNG")
	)
	flag.Parse()
	if *model == "" || flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	pipe, err := core.LoadFile(*model)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	img, err := imgproc.DecodePNG(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	spec, rep, err := pipe.Translate(img)
	if err != nil {
		log.Fatalf("translate: %v", err)
	}
	switch {
	case *dot:
		fmt.Print(spec.DOT(flag.Arg(0)))
	case *asLTL:
		formula, err := ltl.Formula(spec, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(formula)
	case *asSVA:
		src, err := sva.Export(spec, nil, sva.Options{ModuleName: "td_checker"})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(src)
	default:
		fmt.Print(spec.SpecText())
	}
	if *overlay != "" {
		f, err := os.Create(*overlay)
		if err != nil {
			log.Fatal(err)
		}
		if err := png.Encode(f, core.RenderOverlay(img, rep)); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote overlay %s\n", *overlay)
	}
	if *report {
		fmt.Printf("\n-- detections --\n")
		for _, d := range rep.Edges {
			fmt.Printf("edge %-9s %v score %.2f\n", d.Type, d.Box, d.Score)
		}
		for _, t := range rep.Texts {
			fmt.Printf("text %-14q %v conf %.2f\n", t.Text, t.Box, t.Conf)
		}
		if rep.SEI != nil {
			fmt.Printf("v-lines %d, h-lines %d, arrows %d\n",
				len(rep.SEI.VLines), len(rep.SEI.HLines), len(rep.SEI.Arrows))
		}
	}
}
