// Command tdmagic translates a timing-diagram PNG into its SPO formal
// specification.
//
// Usage:
//
//	tdmagic -model model.gob diagram.png              # textual specification
//	tdmagic -model model.gob -dot diagram.png         # Graphviz DAG (Fig. 3)
//	tdmagic -model model.gob -ltl diagram.png         # temporal-logic export
//	tdmagic -model model.gob -sva diagram.png         # SystemVerilog assertions
//	tdmagic -model model.gob -report diagram.png      # detection details
//	tdmagic -model model.gob -overlay o.png diagram.png  # annotated picture
//	tdmagic -model model.gob -strict diagram.png      # fail on degraded inputs
//	tdmagic -model model.gob -trace t.json diagram.png   # per-stage span trace
//	tdmagic -model model.gob -chrome-trace t.json diagram.png  # chrome://tracing
//	tdmagic -model model.gob -batch corpus/ -out specs/        # whole directory
//	tdmagic -model model.gob -batch corpus/ -out specs/ -cache .tdcache  # resumable
//	tdmagic -model model.gob -verify -vcd dump.vcd -delays bounds.json diagram.png
//	tdmagic -model model.gob -synth-vcd golden.vcd diagram.png # satisfying dump
//	tdmagic -watch http://host:8080/v1/jobs/<id>      # live job progress line
//	tdmagic -version                                  # build identity
//
// By default degraded inputs (low contrast, noise, cyclic interpretations)
// still produce a best-effort partial specification; the degradations the
// pipeline worked around are listed on stderr and the exit status stays 0.
// -strict restores fail-fast behaviour: any degradation exits 1.
//
// -verify closes the loop from picture to runtime verification: the
// translated SPO becomes the specification, -delays supplies the
// admissible bounds per timing parameter (JSON, either a bare
// {"t_x": {"min":..,"max":..}} map or {"delays": {...}}), and the -vcd
// dump is streamed through the incremental monitor — one verdict line
// per constraint, exit status 1 on any violation. -synth-vcd writes a
// value-change dump synthesized to satisfy the specification, handy as a
// golden input for the verifier.
//
// Train a model first with tdtrain.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"image/png"
	"log"
	"os"

	"tdmagic/internal/core"
	"tdmagic/internal/imgproc"
	"tdmagic/internal/ltl"
	"tdmagic/internal/monitor"
	"tdmagic/internal/obs"
	"tdmagic/internal/spo"
	"tdmagic/internal/sva"
	"tdmagic/internal/vcd"
	"tdmagic/internal/version"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tdmagic: ")
	var (
		model       = flag.String("model", "", "trained model file from tdtrain (required)")
		dot         = flag.Bool("dot", false, "emit the SPO as a Graphviz digraph")
		asLTL       = flag.Bool("ltl", false, "emit a temporal-logic formula")
		asSVA       = flag.Bool("sva", false, "emit SystemVerilog assertions")
		report      = flag.Bool("report", false, "also print detection details")
		overlay     = flag.String("overlay", "", "write the annotated picture (paper Fig. 6/7 style) to this PNG")
		strict      = flag.Bool("strict", false, "fail (exit 1) on degraded inputs instead of emitting a best-effort partial specification")
		traceOut    = flag.String("trace", "", "write the translation's span trace (per-stage timings and detector counts) to this JSON file")
		chromeOut   = flag.String("chrome-trace", "", "write the span trace in Chrome trace_event format (open in chrome://tracing) to this JSON file")
		intraW      = flag.Int("intra-workers", 0, "goroutines tiling the perception kernels within the picture (0 = every core: the CLI translates one picture, so it saturates the machine; output is identical for any value)")
		batchDir    = flag.String("batch", "", "translate every *.png under this directory instead of a single picture")
		outDir      = flag.String("out", "", "with -batch: write one <name>.spec per picture into this directory (default: print to stdout)")
		cacheDir    = flag.String("cache", "", "with -batch: persistent content-addressed result store; re-runs translate only what is missing")
		batchW      = flag.Int("batch-workers", 0, "with -batch: concurrent translations (0 = GOMAXPROCS)")
		doVerify    = flag.Bool("verify", false, "verify the -vcd dump against the translated specification; exit 1 on violation")
		vcdPath     = flag.String("vcd", "", "with -verify: Verilog value-change dump of the signals under test")
		delaysPath  = flag.String("delays", "", "JSON file with admissible delay bounds per timing parameter")
		synthVCD    = flag.String("synth-vcd", "", "write a VCD dump synthesized to satisfy the translated specification to this file")
		timescale   = flag.String("timescale", "1ms", "VCD timescale for -synth-vcd and for interpreting verdict times")
		watchURL    = flag.String("watch", "", "follow a tdserve job's live event stream by its URL (http://host:port/v1/jobs/<id>) and render a progress line; exits 0 when the job is done, 1 when it fails or is cancelled")
		showVersion = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.Get())
		return
	}
	if *watchURL != "" {
		if flag.NArg() != 0 {
			flag.Usage()
			os.Exit(2)
		}
		os.Exit(runWatch(*watchURL))
	}
	if *model == "" || (*batchDir == "" && flag.NArg() != 1) || (*batchDir != "" && flag.NArg() != 0) {
		flag.Usage()
		os.Exit(2)
	}
	pipe, err := core.LoadFile(*model)
	if err != nil {
		log.Fatal(err)
	}
	if *batchDir != "" {
		pipe.Strict = *strict
		// Batch mode parallelises across pictures; intra-picture tiling
		// stays off unless explicitly requested.
		pipe.IntraWorkers = *intraW
		runBatch(pipe, *batchDir, *outDir, *cacheDir, *batchW)
		return
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	img, err := imgproc.DecodePNG(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	pipe.Strict = *strict
	// The CLI translates exactly one picture, so by default the kernels
	// tile across every core rather than competing with nothing.
	if *intraW == 0 {
		pipe.IntraWorkers = -1
	} else {
		pipe.IntraWorkers = *intraW
	}
	ctx := context.Background()
	var tr *obs.Trace
	if *traceOut != "" || *chromeOut != "" {
		tr = obs.NewTrace(obs.NewRequestID())
		ctx = obs.ContextWithTrace(ctx, tr)
	}
	spec, rep, err := pipe.TranslateContext(ctx, img)
	writeTraces(tr, *traceOut, *chromeOut)
	if err != nil {
		if rep != nil {
			printDiags(rep)
		}
		log.Fatalf("translate: %v", err)
	}
	// In the default (graceful) mode a degraded picture still yields a
	// best-effort partial specification; the degradations the pipeline
	// worked around are reported on stderr so the output stays parseable.
	printDiags(rep)
	if *doVerify || *synthVCD != "" {
		runVerify(ctx, spec, *vcdPath, *delaysPath, *synthVCD, *timescale, *doVerify)
		return
	}
	switch {
	case *dot:
		fmt.Print(spec.DOT(flag.Arg(0)))
	case *asLTL:
		formula, err := ltl.Formula(spec, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(formula)
	case *asSVA:
		src, err := sva.Export(spec, nil, sva.Options{ModuleName: "td_checker"})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(src)
	default:
		fmt.Print(spec.SpecText())
	}
	if *overlay != "" {
		f, err := os.Create(*overlay)
		if err != nil {
			log.Fatal(err)
		}
		if err := png.Encode(f, core.RenderOverlay(img, rep)); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote overlay %s\n", *overlay)
	}
	if *report {
		printReport(rep)
	}
}

// runVerify closes the picture → spec → runtime verification loop for the
// CLI: the translated SPO plus the -delays bounds become a monitorable
// specification. -synth-vcd writes a satisfying dump; -verify streams the
// -vcd dump through the incremental monitor and exits 1 on any violation.
func runVerify(ctx context.Context, p *spo.SPO, vcdPath, delaysPath, synthOut, timescale string, doVerify bool) {
	mspec := &monitor.Spec{SPO: p}
	if delaysPath != "" {
		var err error
		if mspec.Delays, err = loadDelays(delaysPath); err != nil {
			log.Fatal(err)
		}
	}
	if synthOut != "" {
		tr, err := monitor.SynthesizeTrace(mspec, 0)
		if err != nil {
			log.Fatalf("synthesize trace: %v", err)
		}
		f, err := os.Create(synthOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := vcd.Write(f, tr, timescale); err != nil {
			log.Fatalf("write vcd: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tdmagic: wrote satisfying dump %s\n", synthOut)
	}
	if !doVerify {
		return
	}
	if vcdPath == "" {
		log.Fatal("-verify requires -vcd <dump>")
	}
	f, err := os.Open(vcdPath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	out, err := core.Verify(ctx, mspec, bufio.NewReader(f), printVerdict, nil)
	if err != nil {
		log.Fatalf("verify: %v", err)
	}
	if out.Result.OK() {
		fmt.Printf("OK: %d constraint(s) satisfied over %d VCD bytes\n",
			len(p.Constraints), out.TraceBytes)
		return
	}
	fmt.Printf("FAIL: %d violation(s) over %d VCD bytes\n",
		len(out.Result.Violations), out.TraceBytes)
	os.Exit(1)
}

// printVerdict renders one streamed constraint verdict.
func printVerdict(v monitor.Verdict) {
	label := v.Delay
	if label == "" {
		label = "(order)"
	}
	if v.Pass {
		fmt.Printf("pass      #%d %-12s measured %.6g (src %.6g -> dst %.6g)\n",
			v.Index, label, v.Measured, v.SrcTime, v.DstTime)
		return
	}
	fmt.Printf("VIOLATION #%d %-12s %s\n", v.Index, label, v.Reason)
}

// loadDelays reads the admissible-bounds JSON: either a bare
// {"t_x": {"min":..,"max":..}} map or a {"delays": {...}} wrapper (the
// /v1/verify wire format).
func loadDelays(path string) (map[string]monitor.Bounds, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var wrapped struct {
		Delays map[string]monitor.Bounds `json:"delays"`
	}
	if err := json.Unmarshal(raw, &wrapped); err == nil && wrapped.Delays != nil {
		return wrapped.Delays, nil
	}
	var bare map[string]monitor.Bounds
	if err := json.Unmarshal(raw, &bare); err != nil {
		return nil, fmt.Errorf("parse delays %s: %w", path, err)
	}
	return bare, nil
}

// writeTraces persists the recorded span trace in the requested formats.
// Writing happens even when the translation failed — a trace of a failing
// run is exactly what one wants to look at.
func writeTraces(tr *obs.Trace, plain, chrome string) {
	if tr == nil {
		return
	}
	write := func(path string, emit func(f *os.File) error) {
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := emit(f); err != nil {
			log.Fatalf("write trace %s: %v", path, err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tdmagic: wrote trace %s\n", path)
	}
	if plain != "" {
		write(plain, func(f *os.File) error { return tr.WriteJSON(f) })
	}
	if chrome != "" {
		write(chrome, func(f *os.File) error { return tr.WriteChrome(f) })
	}
}

// printDiags lists the structured degradation diagnostics on stderr.
func printDiags(rep *core.Report) {
	for _, d := range rep.Diags {
		if d.HasLocation {
			fmt.Fprintf(os.Stderr, "tdmagic: %s/%s at %v: %s\n", d.Stage, d.Severity, d.Location, d.Message)
		} else {
			fmt.Fprintf(os.Stderr, "tdmagic: %s/%s: %s\n", d.Stage, d.Severity, d.Message)
		}
	}
}

// printReport lists the detection details behind the specification.
func printReport(rep *core.Report) {
	fmt.Printf("\n-- detections --\n")
	for _, d := range rep.Edges {
		fmt.Printf("edge %-9s %v score %.2f\n", d.Type, d.Box, d.Score)
	}
	for _, t := range rep.Texts {
		fmt.Printf("text %-14q %v conf %.2f\n", t.Text, t.Box, t.Conf)
	}
	if rep.SEI != nil {
		fmt.Printf("v-lines %d, h-lines %d, arrows %d\n",
			len(rep.SEI.VLines), len(rep.SEI.HLines), len(rep.SEI.Arrows))
	}
}
