package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestWriteSpecRejectsTraversal pins the path-traversal fix: a corpus
// entry whose stem carries separators or directory references (a file
// literally named "../escape.png", or "...png" whose stem is "..") must
// never produce a file outside the output directory.
func TestWriteSpecRejectsTraversal(t *testing.T) {
	root := t.TempDir()
	out := filepath.Join(root, "out")
	if err := os.MkdirAll(out, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"../escape", "..", ".", "", "a/b", `a\b`, "x\x00y",
	} {
		if err := writeSpec(out, name, "spec"); err == nil {
			t.Errorf("writeSpec accepted unsafe name %q", name)
		}
	}
	// Nothing may have landed outside out (notably root/escape.spec).
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "out" {
		t.Fatalf("unsafe names escaped the output directory: %v", entries)
	}
	if got, err := os.ReadDir(out); err != nil || len(got) != 0 {
		t.Fatalf("unsafe names wrote into the output directory: %v (%v)", got, err)
	}

	if err := writeSpec(out, "ok-name", "G ABC\n"); err != nil {
		t.Fatalf("writeSpec rejected a safe name: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(out, "ok-name.spec"))
	if err != nil || string(data) != "G ABC\n" {
		t.Fatalf("spec not written: %q, %v", data, err)
	}
}
