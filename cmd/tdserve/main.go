// Command tdserve serves a trained TD-Magic model over HTTP: PNG timing
// diagrams in, SPO formal specifications out.
//
// Usage:
//
//	tdserve -model model.gob [-addr :8080] [-workers 4] [-queue 16]
//	        [-cache 256] [-timeout 30s] [-max-body 33554432] [-drain 30s]
//
// Endpoints:
//
//	POST /v1/translate        one PNG body -> SPO JSON + diagnostics
//	POST /v1/translate/batch  multipart/form-data PNG parts -> JSON array
//	GET  /healthz             liveness probe
//	GET  /metrics             Prometheus text metrics
//	GET  /version             build identity
//	GET  /debug/pprof/*       runtime profiles
//
// Every request is tagged with an X-Request-ID (the client's, if sent) and
// logged as one structured JSON line on stderr; POST /v1/translate?debug=1
// returns the translation's per-stage span trace inline.
//
// The service runs a bounded worker pool: -workers translations execute
// concurrently, -queue more may wait, and anything beyond that is shed
// immediately with 429 + Retry-After. Identical pictures (by pixel
// content, not file bytes) are answered from an LRU cache. On SIGTERM or
// SIGINT the listener closes and in-flight requests drain gracefully for
// up to -drain before the process exits.
//
// Train a model first with tdtrain.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tdmagic/internal/core"
	"tdmagic/internal/obs"
	"tdmagic/internal/serve"
	"tdmagic/internal/store"
	"tdmagic/internal/version"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tdserve: ")
	var (
		model       = flag.String("model", "", "trained model file from tdtrain (required)")
		addr        = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		workers     = flag.Int("workers", 0, "concurrent translations (0 = GOMAXPROCS, capped at 8)")
		queue       = flag.Int("queue", 0, "requests allowed to wait for a worker before 429 (0 = 4x workers)")
		cache       = flag.Int("cache", 256, "result-cache entries keyed by picture content (-1 disables)")
		storeDir    = flag.String("store", "", "persistent content-addressed artifact store behind the in-memory cache; survives restarts and is shared with tdmagic -batch")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request translation deadline")
		maxBody     = flag.Int64("max-body", 32<<20, "largest accepted PNG body in bytes")
		drain       = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
		quiet       = flag.Bool("quiet", false, "disable the per-request access log")
		intraW      = flag.Int("intra-workers", 1, "goroutines tiling the perception kernels within each picture (default 1: the worker pool already runs one picture per core; raise only on big machines serving single hot requests)")
		showVersion = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.Get())
		return
	}
	if *model == "" || flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}
	pipe, err := core.LoadFile(*model)
	if err != nil {
		log.Fatal(err)
	}
	pipe.IntraWorkers = *intraW

	cfg := serve.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheSize:    *cache,
		Timeout:      *timeout,
		MaxBodyBytes: *maxBody,
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Store = st
	}
	if !*quiet {
		cfg.Logger = obs.NewLogger(os.Stderr, nil)
	}
	srv := serve.New(pipe, cfg)
	bound, err := srv.Start(*addr)
	if err != nil {
		log.Fatal(err)
	}
	// The bound address goes to stdout so scripts that asked for port 0
	// can discover the port.
	fmt.Printf("listening on %s\n", bound)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	<-ctx.Done()
	stop()

	log.Printf("shutting down: draining in-flight requests (up to %v)", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Fatalf("drain: %v", err)
	}
	log.Printf("drained cleanly")
}
