// Command tdserve serves a trained TD-Magic model over HTTP: PNG timing
// diagrams in, SPO formal specifications out.
//
// Usage:
//
//	tdserve -model model.gob [-addr :8080] [-workers 4] [-queue 16]
//	        [-cache 256] [-timeout 30s] [-max-body 33554432] [-drain 30s]
//
// Endpoints:
//
//	POST /v1/translate        one PNG body -> SPO JSON + diagnostics
//	POST /v1/translate/batch  multipart/form-data PNG parts -> JSON array
//	POST /v1/verify           TD picture (or cached ref) + delays + VCD dump
//	                          -> NDJSON stream of per-constraint verdicts
//	POST   /v1/jobs              durable async job (with -jobs; multipart or manifest)
//	GET    /v1/jobs/{id}         job status; /results streams ordered NDJSON
//	GET    /v1/jobs/{id}/events  live NDJSON lifecycle stream (tdmagic -watch renders it)
//	DELETE /v1/jobs/{id}         cancel a job
//	GET  /healthz             liveness probe
//	GET  /readyz              readiness probe (503 while draining or store unwritable)
//	GET  /metrics             Prometheus text metrics
//	GET  /version             build identity
//	GET  /debug/flight        flight-recorder dump (with -flight)
//	GET  /debug/pprof/*       runtime profiles
//
// Every request is tagged with an X-Request-ID (the client's, if sent) and
// logged as one structured JSON line on stderr; POST /v1/translate?debug=1
// returns the translation's per-stage span trace inline.
//
// With -flight N the server keeps a flight recorder: a bounded in-memory
// ring of the last N request traces and job lifecycle events, dumped by
// GET /debug/flight (filter with ?request_id=, ?name=, ?min_dur=). Any
// request whose root span exceeds -flight-slow is pinned past ring
// eviction, so the trace explaining a latency spike survives the traffic
// that follows it. Histogram exemplars in /metrics carry the request (or
// job) ID of the most recent observation per bucket, linking a spike in
// tdmagic_translate_seconds straight to its flight-recorder entry.
//
// The service runs a bounded worker pool: -workers translations execute
// concurrently, -queue more may wait, and anything beyond that is shed
// immediately with 429 + Retry-After. Identical pictures (by pixel
// content, not file bytes) are answered from an LRU cache. On SIGTERM or
// SIGINT the listener closes and in-flight requests drain gracefully for
// up to -drain before the process exits.
//
// With -jobs DIR (requires -store) the server additionally runs the
// durable job engine: submitted corpora are journaled under DIR, survive
// crashes and restarts (a restarted replica resumes every unfinished job,
// retranslating only items whose artifact never reached the store), and
// retry flaky items with capped backoff before quarantining them.
//
// Train a model first with tdtrain.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tdmagic/internal/core"
	"tdmagic/internal/jobs"
	"tdmagic/internal/metrics"
	"tdmagic/internal/obs"
	"tdmagic/internal/serve"
	"tdmagic/internal/store"
	"tdmagic/internal/version"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tdserve: ")
	var (
		model       = flag.String("model", "", "trained model file from tdtrain (required)")
		addr        = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		workers     = flag.Int("workers", 0, "concurrent translations (0 = GOMAXPROCS, capped at 8)")
		queue       = flag.Int("queue", 0, "requests allowed to wait for a worker before 429 (0 = 4x workers)")
		cache       = flag.Int("cache", 256, "result-cache entries keyed by picture content (-1 disables)")
		storeDir    = flag.String("store", "", "persistent content-addressed artifact store behind the in-memory cache; survives restarts and is shared with tdmagic -batch")
		jobsDir     = flag.String("jobs", "", "durable job journal directory; enables the async /v1/jobs API (requires -store)")
		jobsRoot    = flag.String("jobs-manifest-root", "", "directory manifest-style job submissions may reference; empty restricts /v1/jobs to uploads")
		jobsWorkers = flag.Int("jobs-workers", 0, "concurrent job item translations (0 = GOMAXPROCS)")
		jobsRetries = flag.Int("jobs-attempts", 3, "attempts before an item is quarantined")
		jobsLease   = flag.Duration("jobs-lease", 30*time.Second, "item lease duration before a silent worker is presumed dead")
		jobsPause   = flag.Duration("jobs-throttle", 0, "pause before each job item attempt (rate limit)")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request translation deadline")
		verifyTmo   = flag.Duration("verify-timeout", 60*time.Second, "per-request /v1/verify deadline (translation + streaming check)")
		maxBody     = flag.Int64("max-body", 32<<20, "largest accepted PNG body in bytes")
		maxVCD      = flag.Int64("max-vcd", 1<<30, "largest accepted VCD dump in bytes (streamed, so this bounds work, not memory)")
		maxJobBody  = flag.Int64("max-job-body", 256<<20, "largest accepted /v1/jobs multipart upload in bytes (the server's per-request memory exposure)")
		drain       = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
		quiet       = flag.Bool("quiet", false, "disable the per-request access log")
		intraW      = flag.Int("intra-workers", 1, "goroutines tiling the perception kernels within each picture (default 1: the worker pool already runs one picture per core; raise only on big machines serving single hot requests)")
		flightN     = flag.Int("flight", 256, "flight-recorder ring capacity in traces/events behind GET /debug/flight (0 disables)")
		flightSlow  = flag.Duration("flight-slow", time.Second, "root-span duration that pins a trace past flight-ring eviction")
		flightBytes = flag.Int("flight-bytes", 1<<20, "flight-recorder ring budget in estimated bytes")
		showVersion = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.Get())
		return
	}
	if *model == "" || flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}
	pipe, err := core.LoadFile(*model)
	if err != nil {
		log.Fatal(err)
	}
	pipe.IntraWorkers = *intraW

	cfg := serve.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheSize:       *cache,
		Timeout:         *timeout,
		VerifyTimeout:   *verifyTmo,
		MaxBodyBytes:    *maxBody,
		MaxVCDBytes:     *maxVCD,
		MaxJobBodyBytes: *maxJobBody,
	}
	if *flightN > 0 {
		cfg.Flight = obs.NewRecorder(obs.RecorderConfig{
			MaxEntries: *flightN,
			MaxBytes:   *flightBytes,
			Slow:       *flightSlow,
		})
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Store = st
	}
	if !*quiet {
		cfg.Logger = obs.NewLogger(os.Stderr, nil)
	}
	if cfg.Registry == nil {
		// serve.New would create a private registry; build it here so the
		// store and job metrics land in the same exposition.
		cfg.Registry = metrics.NewRegistry()
	}
	if cfg.Store != nil {
		cfg.Store.SetMetrics(store.NewMetrics(cfg.Registry))
	}
	if *jobsDir != "" {
		if cfg.Store == nil {
			log.Fatal("-jobs requires -store: the artifact store is what makes job resume incremental")
		}
		js, err := jobs.Open(*jobsDir, pipe, cfg.Store, jobs.Config{
			Workers:     *jobsWorkers,
			LeaseTTL:    *jobsLease,
			MaxAttempts: *jobsRetries,
			Timeout:     *timeout,
			Throttle:    *jobsPause,
			// The recorder doubles as the job tracing switch: with it on,
			// every job runs under a root span whose per-item children land
			// in /debug/flight when the job finishes.
			Trace:    cfg.Flight != nil,
			Flight:   cfg.Flight,
			Registry: cfg.Registry,
			Logger:   cfg.Logger,
		})
		if err != nil {
			log.Fatal(err)
		}
		cfg.Jobs = js
		cfg.JobsManifestRoot = *jobsRoot
	}
	srv := serve.New(pipe, cfg)
	bound, err := srv.Start(*addr)
	if err != nil {
		log.Fatal(err)
	}
	// The bound address goes to stdout so scripts that asked for port 0
	// can discover the port.
	fmt.Printf("listening on %s\n", bound)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	<-ctx.Done()
	stop()

	log.Printf("shutting down: draining in-flight requests (up to %v)", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Fatalf("drain: %v", err)
	}
	log.Printf("drained cleanly")
}
