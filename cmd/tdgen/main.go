// Command tdgen generates a synthetic labelled timing-diagram dataset with
// L-TD-G (paper Sec. IV): PNG pictures plus JSON labels (edge boxes, text
// boxes, annotation lines, arrows, and the ground-truth SPO).
//
// Usage:
//
//	tdgen -out dir [-mode G1|G2|G3] [-n 100] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"tdmagic/internal/tdgen"
	"tdmagic/internal/version"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tdgen: ")
	var (
		out         = flag.String("out", "", "output directory (required)")
		mode        = flag.String("mode", "G1", "generation mode: G1, G2 or G3")
		n           = flag.Int("n", 100, "number of diagrams")
		seed        = flag.Int64("seed", 1, "random seed")
		showVersion = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.Get())
		return
	}
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	var m tdgen.Mode
	switch *mode {
	case "G1":
		m = tdgen.G1
	case "G2":
		m = tdgen.G2
	case "G3":
		m = tdgen.G3
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	g := tdgen.New(tdgen.DefaultConfig(m), rand.New(rand.NewSource(*seed)))
	for i := 0; i < *n; i++ {
		s, err := g.Generate()
		if err != nil {
			log.Fatalf("sample %d: %v", i, err)
		}
		if err := s.Save(*out); err != nil {
			log.Fatalf("save %s: %v", s.Name, err)
		}
	}
	fmt.Printf("wrote %d %s diagrams to %s\n", *n, *mode, *out)
}
