// Command tdeval regenerates the experimental evaluation of the paper
// (Sec. VI): Table I (edge detection on synthetic validation data), the OCR
// synthetic validation, the extrapolation-corpus statistics, Table II
// (object detection in extrapolation), Table III (OCR in extrapolation) and
// the overall SPO-extraction performance.
//
// Usage:
//
//	tdeval                      # run everything
//	tdeval -table 2             # one table: 1, ocr-synth, stats, 2, 3, overall
//	tdeval -table overall -verbose
//	tdeval -g1 128 -g2 64 -g3 48  # larger training mix
//	tdeval -robustness -robustout BENCH_03.json  # corruption sweep
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"tdmagic/internal/core"
	"tdmagic/internal/eval"
	"tdmagic/internal/metrics"
	"tdmagic/internal/store"
	"tdmagic/internal/version"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tdeval: ")
	var (
		table      = flag.String("table", "all", "experiment: all, 1, ocr-synth, stats, 2, 3, overall, noise, scale")
		robustness = flag.Bool("robustness", false, "run the corruption-type x severity robustness sweep instead of the tables")
		robustOut  = flag.String("robustout", "", "also write the robustness sweep as JSON to this file (BENCH_03 format)")
		verbose    = flag.Bool("verbose", false, "per-diagram detail for overall")
		seed       = flag.Int64("seed", 1, "random seed")
		g1         = flag.Int("g1", 64, "G1 training pictures")
		g2         = flag.Int("g2", 32, "G2 training pictures")
		g3         = flag.Int("g3", 24, "G3 training pictures")
		valN       = flag.Int("val", 40, "synthetic validation pictures")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel workers for generation and training (results are worker-count invariant)")
		intraW     = flag.Int("intra-workers", 1, "goroutines tiling the perception kernels within each picture (default 1: the batch path already runs one picture per worker; results are identical for any value)")
		corpusDir  = flag.String("corpus", "", "evaluate tables 2, 3 and overall on this sample directory, streaming pictures through the batch executor instead of materialising the corpus up front")
		cacheDir   = flag.String("cache", "", "persistent content-addressed result store; re-evaluations answer unchanged pictures from disk")
		cpuProf    = flag.String("cpuprofile", "", "write CPU profile to file")
		memProf    = flag.String("memprofile", "", "write heap profile to file on exit")
		showMetric = flag.Bool("metrics", false, "print the translation metric exposition (same counters tdserve exports) to stderr after the run")

		showVersion = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.Get())
		return
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}

	opts := eval.DefaultOptions()
	opts.Seed = *seed
	opts.TrainG1, opts.TrainG2, opts.TrainG3 = *g1, *g2, *g3
	opts.Validation = *valN
	opts.Workers = *workers

	var pipe *core.Pipeline
	var reg *metrics.Registry
	if *table != "stats" {
		t0 := time.Now()
		p, err := eval.TrainPipeline(opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trained pipeline in %v\n", time.Since(t0))
		pipe = p
		pipe.IntraWorkers = *intraW
		if *showMetric {
			// The exact counter bundle tdserve exports on /metrics, so an
			// offline evaluation and a serving deployment are comparable
			// number for number.
			reg = metrics.NewRegistry()
			pipe.Metrics = core.NewPipelineMetrics(reg)
			defer func() {
				fmt.Fprintln(os.Stderr, "-- translation metrics --")
				if err := reg.WriteText(os.Stderr); err != nil {
					log.Print(err)
				}
			}()
		}
	}

	if *robustness {
		val, err := eval.GenValidationSet(opts)
		if err != nil {
			log.Fatal(err)
		}
		_, corpus, err := eval.CorpusStats(opts)
		if err != nil {
			log.Fatal(err)
		}
		sweepOpts := eval.DefaultSweepOptions()
		sweepOpts.Seed = *seed
		sweepOpts.Workers = *workers
		res, err := eval.RobustnessSweep(pipe, val, corpus, sweepOpts)
		if err != nil {
			log.Fatal(err)
		}
		res.Print(os.Stdout)
		if *robustOut != "" {
			f, err := os.Create(*robustOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := res.WriteJSON(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *robustOut)
		}
		return
	}

	run := func(name string) bool { return *table == "all" || *table == name }

	if run("1") || run("ocr-synth") {
		val, err := eval.GenValidationSet(opts)
		if err != nil {
			log.Fatal(err)
		}
		if run("1") {
			eval.TableI(pipe, val).Print(os.Stdout)
			fmt.Println()
		}
		if run("ocr-synth") {
			eval.OCRSynthetic(pipe, val).Print(os.Stdout, "OCR validation accuracy on synthetic data (Sec. VI text)")
			fmt.Println()
		}
	}
	if run("stats") || run("2") || run("3") || run("overall") {
		// The extrapolation tables stream through the batch executor: a
		// picture is loaded (or generated) when a worker frees up and
		// released right after scoring, so the evaluation holds O(workers)
		// pictures instead of the whole corpus. -cache answers unchanged
		// pictures from the persistent store; results are bit-identical
		// either way.
		ropts := eval.RunOpts{Workers: *workers}
		if *cacheDir != "" {
			st, err := store.Open(*cacheDir)
			if err != nil {
				log.Fatal(err)
			}
			ropts.Store = st
		}
		var corpus eval.Corpus
		if *corpusDir != "" {
			c, err := eval.DirCorpus(*corpusDir)
			if err != nil {
				log.Fatal(err)
			}
			corpus = c
			if run("stats") && *table == "stats" {
				log.Fatal("-table stats describes the generated extrapolation corpus and is not available with -corpus")
			}
		} else {
			stats, samples, err := eval.CorpusStats(opts)
			if err != nil {
				log.Fatal(err)
			}
			if run("stats") {
				stats.Print(os.Stdout)
				fmt.Println()
			}
			corpus = eval.SliceCorpus(samples)
		}
		if run("2") {
			res, err := eval.TableIIRun(pipe, corpus, ropts)
			if err != nil {
				log.Fatal(err)
			}
			res.Print(os.Stdout)
			fmt.Println()
		}
		if run("3") {
			res, err := eval.TableIIIRun(pipe, corpus)
			if err != nil {
				log.Fatal(err)
			}
			res.Print(os.Stdout, "TABLE III: OCR Accuracy in Extrapolation.")
			fmt.Println()
		}
		if run("overall") {
			res, err := eval.OverallRun(pipe, corpus, ropts)
			if err != nil {
				log.Fatal(err)
			}
			res.Print(os.Stdout, *verbose)
		}
	}
	if run("scale") {
		_, corpus, err := eval.CorpusStats(opts)
		if err != nil {
			log.Fatal(err)
		}
		eval.ScaleRobustness(pipe, corpus, []float64{0.6, 0.8, 1.0, 1.25}).Print(os.Stdout)
		fmt.Println()
	}
	if run("noise") {
		res, err := eval.NoiseRobustness(pipe, *seed+2000, 20, []int{0, 200, 800, 2000, 5000})
		if err != nil {
			log.Fatal(err)
		}
		res.Print(os.Stdout)
	}
}
