// Datasheet example: the paper's Fig. 4 (left) — a power-switch datasheet
// diagram where a digital input V_INA drives a ramping output V_OUTA with
// turn-on/turn-off delays t_D(on) and t_D(off) (Example 1 of the paper).
//
// The example translates the clean diagram, then a second variant that
// reproduces the paper's Example 3 corner case: step edges drawn nearly as
// thick as the (solid) vertical annotation lines, which genuinely confuses
// the edge detector.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tdmagic"
)

func main() {
	log.SetFlags(0)

	fmt.Println("training the pipeline on synthetic data...")
	train, err := tdmagic.NewGenerator(tdmagic.G1, 1).GenerateN(60)
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := tdmagic.Train(rand.New(rand.NewSource(1)), train, tdmagic.DefaultTrainConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== Fig. 4 (left), clean drawing (paper Example 1) ==")
	clean := fig4Left(false)
	translate(pipe, clean)

	fmt.Println("\n== same diagram, thick step edges + solid vertical lines (paper Example 3) ==")
	thick := fig4Left(true)
	translate(pipe, thick)
}

// translate renders d, runs the pipeline and reports the result against
// the ground truth.
func translate(pipe *tdmagic.Pipeline, d *tdmagic.Diagram) {
	sample, err := d.Render()
	if err != nil {
		log.Fatal(err)
	}
	spec, _, err := pipe.Translate(sample.Image)
	if err != nil {
		fmt.Printf("translation failed: %v\n", err)
		return
	}
	fmt.Print(spec.SpecText())
	switch {
	case spec.TotalEqual(sample.Truth):
		fmt.Println("-> totally correct")
	case spec.TemplateEqual(sample.Truth):
		fmt.Println("-> structurally correct, some text differs")
	default:
		fmt.Printf("-> structural errors (constraint recall %.2f); ground truth:\n", spec.ConstraintRecall(sample.Truth))
		fmt.Print(sample.Truth.SpecText())
	}
}

// fig4Left builds the V_INA / V_OUTA diagram. With thick=true the step
// edges use the thick stroke and the event lines are drawn solid — the
// geometry of the paper's Example 3 failure.
func fig4Left(thick bool) *tdmagic.Diagram {
	st := tdmagic.DefaultStyle()
	if thick {
		st.SolidVLines = true
		st.LineStroke = 2
	}
	return &tdmagic.Diagram{
		Name: "vnh5050a-fig6",
		Signals: []tdmagic.Signal{
			{
				Name: "V_{INA}",
				Kind: tdmagic.Digital,
				Edges: []tdmagic.Edge{
					{Type: tdmagic.RiseStep, X0: 0.10, X1: 0.16, YLow: 0.1, YHigh: 0.9, HasEvent: true, Thick: thick},
					{Type: tdmagic.FallStep, X0: 0.55, X1: 0.61, YLow: 0.1, YHigh: 0.9, HasEvent: true, Thick: thick},
				},
			},
			{
				Name:      "V_{OUTA}",
				Kind:      tdmagic.Ramp,
				BoundHigh: "V_{CC}",
				BoundLow:  "GND",
				Edges: []tdmagic.Edge{
					{Type: tdmagic.RiseRamp, X0: 0.20, X1: 0.38, YLow: 0.1, YHigh: 0.9,
						Threshold: 0.9, ThresholdText: "90%", HasEvent: true},
					{Type: tdmagic.FallRamp, X0: 0.65, X1: 0.85, YLow: 0.1, YHigh: 0.9,
						Threshold: 0.1, ThresholdText: "10%", HasEvent: true},
				},
			},
		},
		Arrows: []tdmagic.Arrow{
			{From: tdmagic.EventRef{Signal: 0, Edge: 0}, To: tdmagic.EventRef{Signal: 1, Edge: 0}, Label: "t_{D(on)}", Y: 0.3},
			{From: tdmagic.EventRef{Signal: 0, Edge: 1}, To: tdmagic.EventRef{Signal: 1, Edge: 1}, Label: "t_{D(off)}", Y: 0.7},
		},
		Style: st,
	}
}
