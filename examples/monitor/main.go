// Monitor example: use a timing diagram as a runtime-verification
// specification — the application the paper's introduction motivates.
//
// The pipeline translates a rendered datasheet diagram into an SPO; the SPO
// plus the datasheet's delay table becomes a monitor specification; two
// simulated execution traces are then checked against it: one conforming,
// one with a turn-on delay out of range.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tdmagic"
)

func main() {
	log.SetFlags(0)

	fmt.Println("training the pipeline on synthetic data...")
	train, err := tdmagic.NewGenerator(tdmagic.G1, 3).GenerateN(60)
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := tdmagic.Train(rand.New(rand.NewSource(3)), train, tdmagic.DefaultTrainConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Translate the diagram into a specification.
	sample, err := diagramUnderTest().Render()
	if err != nil {
		log.Fatal(err)
	}
	spec, _, err := pipe.Translate(sample.Image)
	if err != nil {
		log.Fatalf("translation failed: %v", err)
	}
	fmt.Println("\nspecification extracted from the picture:")
	fmt.Print(spec.SpecText())

	// The datasheet's electrical characteristics give the delay ranges
	// (times in microseconds here).
	ms := &tdmagic.MonitorSpec{
		SPO: spec,
		Delays: map[string]tdmagic.Bounds{
			"t_{D(on)}":  {Min: 1, Max: 4},
			"t_{D(off)}": {Min: 1, Max: 4},
		},
	}

	// Trace 1: synthesised to satisfy the spec (delays at interval
	// midpoints).
	good, err := tdmagic.SynthesizeTrace(ms, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := tdmagic.Check(ms, good)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconforming trace: OK=%v, %d violations\n", res.OK(), len(res.Violations))

	// Trace 2: stretch the output signal's response so t_D(on) exceeds
	// its maximum.
	bad, err := tdmagic.SynthesizeTrace(ms, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	if out := bad.Signal("V_{OUTA}"); out != nil {
		for i := range out.Points {
			out.Points[i].T += 3.5 // late response
		}
	}
	res, err = tdmagic.Check(ms, bad)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("late-response trace: OK=%v\n", res.OK())
	for _, v := range res.Violations {
		fmt.Printf("  violation: %v\n", v)
	}
}

// diagramUnderTest is the Fig. 4 (left) power-switch diagram.
func diagramUnderTest() *tdmagic.Diagram {
	return &tdmagic.Diagram{
		Name: "monitored",
		Signals: []tdmagic.Signal{
			{
				Name: "V_{INA}",
				Kind: tdmagic.Digital,
				Edges: []tdmagic.Edge{
					{Type: tdmagic.RiseStep, X0: 0.10, X1: 0.16, YLow: 0.1, YHigh: 0.9, HasEvent: true},
					{Type: tdmagic.FallStep, X0: 0.55, X1: 0.61, YLow: 0.1, YHigh: 0.9, HasEvent: true},
				},
			},
			{
				Name: "V_{OUTA}",
				Kind: tdmagic.Ramp,
				Edges: []tdmagic.Edge{
					{Type: tdmagic.RiseRamp, X0: 0.20, X1: 0.38, YLow: 0.1, YHigh: 0.9,
						Threshold: 0.9, ThresholdText: "90%", HasEvent: true},
					{Type: tdmagic.FallRamp, X0: 0.65, X1: 0.85, YLow: 0.1, YHigh: 0.9,
						Threshold: 0.1, ThresholdText: "10%", HasEvent: true},
				},
			},
		},
		Arrows: []tdmagic.Arrow{
			{From: tdmagic.EventRef{Signal: 0, Edge: 0}, To: tdmagic.EventRef{Signal: 1, Edge: 0}, Label: "t_{D(on)}", Y: 0.3},
			{From: tdmagic.EventRef{Signal: 0, Edge: 1}, To: tdmagic.EventRef{Signal: 1, Edge: 1}, Label: "t_{D(off)}", Y: 0.7},
		},
		Style: tdmagic.DefaultStyle(),
	}
}
