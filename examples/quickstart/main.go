// Quickstart: generate synthetic training data with L-TD-G, train the
// TD-Magic pipeline, and translate the paper's Fig. 1 timing diagram D —
// signal X with two pulses, signal Y with one, and the timing relations
// t1, t2, t3 — into its SPO formal specification (the paper's Fig. 3).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"tdmagic"
)

func main() {
	log.SetFlags(0)

	// 1. Synthetic training data (L-TD-G).
	fmt.Println("generating synthetic training data...")
	gen := tdmagic.NewGenerator(tdmagic.G1, 1)
	train, err := gen.GenerateN(60)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Train the pipeline (edge detector + OCR).
	fmt.Println("training the pipeline...")
	pipe, err := tdmagic.Train(rand.New(rand.NewSource(1)), train, tdmagic.DefaultTrainConfig())
	if err != nil {
		log.Fatal(err)
	}

	// 3. Build the paper's Fig. 1: TD D with signals X and Y.
	d := fig1()
	sample, err := d.Render()
	if err != nil {
		log.Fatal(err)
	}
	if f, err := os.Create("fig1.png"); err == nil {
		_ = sample.Image.EncodePNG(f)
		f.Close()
		fmt.Println("wrote fig1.png")
	}

	// 4. Translate the picture into an SPO.
	spec, _, err := pipe.Translate(sample.Image)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nextracted formal specification:")
	fmt.Print(spec.SpecText())
	fmt.Println("\nas a DAG (paper Fig. 3):")
	fmt.Print(spec.DOT("D"))

	if spec.TotalEqual(sample.Truth) {
		fmt.Println("translation matches the ground truth exactly.")
	} else if spec.TemplateEqual(sample.Truth) {
		fmt.Println("translation is structurally correct (template level).")
	} else {
		fmt.Println("translation differs from the ground truth:")
		fmt.Print(sample.Truth.SpecText())
	}
}

// fig1 reconstructs the paper's Fig. 1 timing diagram D: X pulses twice,
// Y pulses once; t1 spans X's first pulse, t2 links X's first rise to Y's
// rise, t3 spans the gap between X's pulses.
func fig1() *tdmagic.Diagram {
	return &tdmagic.Diagram{
		Name: "fig1-D",
		Signals: []tdmagic.Signal{
			{
				Name: "X",
				Kind: tdmagic.Digital,
				Edges: []tdmagic.Edge{
					{Type: tdmagic.RiseStep, X0: 0.08, X1: 0.12, YLow: 0.1, YHigh: 0.9, HasEvent: true},
					{Type: tdmagic.FallStep, X0: 0.30, X1: 0.34, YLow: 0.1, YHigh: 0.9, HasEvent: true},
					{Type: tdmagic.RiseStep, X0: 0.58, X1: 0.62, YLow: 0.1, YHigh: 0.9, HasEvent: true},
					{Type: tdmagic.FallStep, X0: 0.82, X1: 0.86, YLow: 0.1, YHigh: 0.9},
				},
			},
			{
				Name: "Y",
				Kind: tdmagic.Digital,
				Edges: []tdmagic.Edge{
					{Type: tdmagic.RiseStep, X0: 0.42, X1: 0.46, YLow: 0.1, YHigh: 0.9, HasEvent: true},
					{Type: tdmagic.FallStep, X0: 0.70, X1: 0.74, YLow: 0.1, YHigh: 0.9},
				},
			},
		},
		Arrows: []tdmagic.Arrow{
			{From: tdmagic.EventRef{Signal: 0, Edge: 0}, To: tdmagic.EventRef{Signal: 0, Edge: 1}, Label: "t_{1}", Y: 0.1},
			{From: tdmagic.EventRef{Signal: 0, Edge: 0}, To: tdmagic.EventRef{Signal: 1, Edge: 0}, Label: "t_{2}", Y: 0.5},
			{From: tdmagic.EventRef{Signal: 0, Edge: 1}, To: tdmagic.EventRef{Signal: 0, Edge: 2}, Label: "t_{3}", Y: 0.9},
		},
		Style: tdmagic.DefaultStyle(),
	}
}
