// SPI timing example: the paper's Fig. 4 (right) — a shift-register
// datasheet diagram where the data line SI (drawn bus-style with
// double-ramp transitions) must be stable around the SCK rising edge:
// setup time t_s and hold time t_h (Example 2 of the paper).
//
// After translation, the extracted SPO is exported as a metric-temporal-
// logic formula, the bridge to model checking that the paper's related
// work motivates.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tdmagic"
)

func main() {
	log.SetFlags(0)

	fmt.Println("training the pipeline on synthetic data...")
	train, err := tdmagic.NewGenerator(tdmagic.G3, 2).GenerateN(60)
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := tdmagic.Train(rand.New(rand.NewSource(2)), train, tdmagic.DefaultTrainConfig())
	if err != nil {
		log.Fatal(err)
	}

	d := fig4Right()
	sample, err := d.Render()
	if err != nil {
		log.Fatal(err)
	}
	spec, _, err := pipe.Translate(sample.Image)
	if err != nil {
		log.Fatalf("translation failed: %v", err)
	}
	fmt.Println("\nextracted specification (paper Example 2):")
	fmt.Print(spec.SpecText())
	if spec.TotalEqual(sample.Truth) {
		fmt.Println("-> totally correct")
	} else if spec.TemplateEqual(sample.Truth) {
		fmt.Println("-> structurally correct")
	}

	// Datasheet Table 7 gives t_s and t_h ranges; export the bounded
	// temporal-logic formula.
	bounds := map[string]tdmagic.Bounds{
		"t_{s}": {Min: 6e-9, Max: 0},  // setup >= 6 ns
		"t_{h}": {Min: 12e-9, Max: 0}, // hold >= 12 ns
	}
	formula, err := tdmagic.Formula(spec, bounds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nas a temporal-logic formula:")
	fmt.Println(formula)

	// And as SystemVerilog assertions for a simulation testbench
	// (delays scaled to a 1 ns clock).
	src, err := tdmagic.ExportSVA(spec, bounds, tdmagic.SVAOptions{
		ModuleName:    "spi_timing_checker",
		CyclesPerUnit: 1e9,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nas SystemVerilog assertions:")
	fmt.Print(src)
}

// fig4Right builds the SI / SCK setup-hold diagram.
func fig4Right() *tdmagic.Diagram {
	return &tdmagic.Diagram{
		Name: "m74hc595-fig9",
		Signals: []tdmagic.Signal{
			{
				Name: "SI",
				Kind: tdmagic.DoubleRamp,
				Edges: []tdmagic.Edge{
					{Type: tdmagic.Double, X0: 0.15, X1: 0.22, YLow: 0.15, YHigh: 0.85,
						Threshold: 0.5, ThresholdText: "50%", HasEvent: true},
					{Type: tdmagic.Double, X0: 0.70, X1: 0.77, YLow: 0.15, YHigh: 0.85,
						Threshold: 0.5, ThresholdText: "50%", HasEvent: true},
				},
			},
			{
				Name: "SCK",
				Kind: tdmagic.Ramp,
				Edges: []tdmagic.Edge{
					{Type: tdmagic.RiseRamp, X0: 0.42, X1: 0.50, YLow: 0.15, YHigh: 0.85,
						Threshold: 0.5, ThresholdText: "50%", HasEvent: true},
				},
			},
		},
		Arrows: []tdmagic.Arrow{
			{From: tdmagic.EventRef{Signal: 0, Edge: 0}, To: tdmagic.EventRef{Signal: 1, Edge: 0}, Label: "t_{s}", Y: 0.35},
			{From: tdmagic.EventRef{Signal: 1, Edge: 0}, To: tdmagic.EventRef{Signal: 0, Edge: 1}, Label: "t_{h}", Y: 0.65},
		},
		Style: tdmagic.DefaultStyle(),
	}
}
